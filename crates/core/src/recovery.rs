//! Shutdown, crash simulation hooks and recovery (paper §3.7).
//!
//! In a real deployment the non-volatile table lives in DAX-mapped files;
//! after a restart, recovery re-opens them and rebuilds the two DRAM
//! structures (OCF and hot table) with one multi-threaded scan. In this
//! reproduction the "files" are [`NvmRegion`]s: [`Hdnh::into_pool`] plays
//! the role of unmapping (only the persistent parts survive), the strict
//! regions' `crash()` plays the power failure, and [`Hdnh::recover`]
//! re-opens the pool:
//!
//! * **After a normal shutdown / crash in stable state** — rebuild OCF and
//!   hot table by scanning the levels once, in parallel batches of buckets
//!   (the paper's multi-threaded recovery).
//! * **Crash while `level number = 2` (allocating)** — the new level may or
//!   may not exist; recovery "applies for the new level again" and restarts
//!   the rehash from bucket 0 (re-migrating is idempotent thanks to the
//!   duplicate check).
//! * **Crash while `level number = 3` (rehashing)** — resume migration at
//!   the persisted bucket cursor with duplicate checking (a crash mid-bucket
//!   may have moved only part of it), then finalize the level swap.
//!
//! The scan also repairs the documented update-fallback window: if a crash
//! left two valid copies of one key, the first one found wins and the other
//! bit is cleared.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdnh_common::hash::KeyHashes;
use hdnh_common::rng::XorShift64Star;
use hdnh_common::Key;
use hdnh_nvm::{fault, NvmRegion};
use hdnh_obs as obs;

use crate::hot::HotTable;
use crate::meta::{Meta, ResizeState};
use crate::nvtable::{header_slot_spilled, slot_checksum_ok, Level};
use crate::ocf::Ocf;
use crate::params::{HdnhParams, SyncMode, BUCKET_BYTES, SLOTS_PER_BUCKET};
use crate::table::{CANDIDATES_FULL, CANDIDATES_ONE_CHOICE};
use crate::sync::SyncWriter;
use crate::table::{Hdnh, Inner};

/// The persistent half of an HDNH instance: what survives a power cycle.
pub struct PersistentPool {
    /// Metadata block.
    pub meta: Arc<NvmRegion>,
    /// Top-level region.
    pub top: Arc<NvmRegion>,
    /// Bottom-level region.
    pub bottom: Arc<NvmRegion>,
    /// In-flight new top level, present iff a resize was interrupted.
    pub new_top: Option<Arc<NvmRegion>>,
    /// Value-log segment regions, keyed by segment id.
    pub vlog: Vec<(u32, Arc<NvmRegion>)>,
}

impl PersistentPool {
    /// Simulates a power failure across every region of the pool (strict
    /// regions only). Returns the number of dropped words.
    pub fn crash(&self, seed: u64) -> usize {
        let mut rng = XorShift64Star::new(seed);
        let mut dropped = self.meta.crash(&mut rng);
        dropped += self.top.crash(&mut rng);
        dropped += self.bottom.crash(&mut rng);
        if let Some(nt) = &self.new_top {
            dropped += nt.crash(&mut rng);
        }
        for (_, region) in &self.vlog {
            dropped += region.crash(&mut rng);
        }
        dropped
    }
}

/// Wall-clock breakdown of one recovery (table 1's three rows).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryTiming {
    /// Time to rebuild the OCF alone.
    pub ocf: Duration,
    /// Time to rebuild the hot table alone.
    pub hot: Duration,
    /// Time for the merged single-scan rebuild (what recovery actually
    /// does); includes resize-resume work if any.
    pub total: Duration,
}

impl Hdnh {
    /// Normal shutdown: drops all DRAM state and returns the persistent
    /// pool. (The DRAM structures die with the process either way; this
    /// models unmapping the pool files.)
    pub fn into_pool(self) -> PersistentPool {
        // Detach the published snapshot (Drop then sees null and skips it).
        let inner =
            unsafe { Box::from_raw(self.current.swap(std::ptr::null_mut(), Ordering::SeqCst)) };
        let pending = self.pending_new_top.lock().take();
        PersistentPool {
            meta: Arc::clone(self.meta.region()),
            top: Arc::clone(inner.top.region()),
            bottom: Arc::clone(inner.bottom.region()),
            new_top: pending.as_ref().map(|(l, _)| Arc::clone(l.region())),
            vlog: self.vlog.regions(),
        }
    }

    /// Re-opens a pool: completes any interrupted resize, then rebuilds the
    /// OCF and hot table with `threads` parallel scan threads.
    pub fn recover(params: HdnhParams, pool: PersistentPool, threads: usize) -> Hdnh {
        Self::recover_timed(params, pool, threads).0
    }

    /// [`Hdnh::recover`] plus the table-1 timing breakdown. Panics on
    /// backend I/O failure (which heap regions never have); the fallible
    /// form is [`Hdnh::try_recover_timed`].
    pub fn recover_timed(
        params: HdnhParams,
        pool: PersistentPool,
        threads: usize,
    ) -> (Hdnh, RecoveryTiming) {
        Self::try_recover_timed(params, pool, threads)
            .unwrap_or_else(|e| panic!("recovery failed: {e}"))
    }

    /// [`Hdnh::recover_timed`] with pool-file allocation failures and
    /// geometry mismatches surfaced as typed errors
    /// ([`HdnhError::Recovery`](crate::HdnhError::Recovery)) instead of
    /// panics, so a pool created with different parameters is reported
    /// rather than aborting the process.
    pub fn try_recover_timed(
        params: HdnhParams,
        pool: PersistentPool,
        threads: usize,
    ) -> Result<(Hdnh, RecoveryTiming), crate::HdnhError> {
        params.validate();
        obs::trace::milestone(obs::trace::Milestone::RecoveryStart);
        let t0 = Instant::now();
        let meta = Meta::open(pool.meta);
        if meta.segment_bytes() != params.segment_bytes {
            return Err(crate::HdnhError::Recovery(format!(
                "params disagree with the persisted pool geometry: \
                 persisted segment_bytes {} vs configured {}",
                meta.segment_bytes(),
                params.segment_bytes
            )));
        }
        let bps = params.segment_bytes / BUCKET_BYTES;
        // Level geometry comes from the *actual region sizes* (a real pool
        // knows the sizes of its DAX files), not from the metadata block: a
        // crash inside the level-swap window leaves `meta`'s geometry one
        // store behind the regions that really survived, and recovery must
        // adopt what is there.
        let seg_bytes = bps * BUCKET_BYTES;
        if !pool.top.len().is_multiple_of(seg_bytes)
            || !pool.bottom.len().is_multiple_of(seg_bytes)
        {
            return Err(crate::HdnhError::Recovery(format!(
                "pool regions are not whole segments: top {} B, bottom {} B, \
                 segment {} B",
                pool.top.len(),
                pool.bottom.len(),
                seg_bytes
            )));
        }
        let mut top_region = pool.top;
        let mut bottom_region = pool.bottom;
        let mut new_top_region = pool.new_top;
        // The converse skew is possible too: a crash *after* the swap's
        // metadata stores but before the next clean shutdown leaves the
        // pool files still labeled by their pre-swap roles while `meta`
        // already records the post-swap geometry. Levels double in size at
        // every resize, so the role of each surviving file is recoverable
        // from its size alone — promote the migrated level and demote the
        // old top (the old bottom's records all live in the new level).
        if meta.state() == ResizeState::Stable
            && (top_region.len() / seg_bytes != meta.top_segments()
                || bottom_region.len() / seg_bytes != meta.bottom_segments())
        {
            let nt = new_top_region.take().ok_or_else(|| {
                crate::HdnhError::Recovery(
                    "meta geometry disagrees with the pool regions and no in-flight \
                     level survived"
                        .to_string(),
                )
            })?;
            if nt.len() / seg_bytes != meta.top_segments()
                || top_region.len() / seg_bytes != meta.bottom_segments()
            {
                return Err(crate::HdnhError::Recovery(
                    "no role assignment of the surviving regions matches the \
                     persisted geometry"
                        .to_string(),
                ));
            }
            bottom_region = std::mem::replace(&mut top_region, nt);
            fault::point("recover.relabeled");
        }
        let top_segments = top_region.len() / seg_bytes;
        let bottom_segments = bottom_region.len() / seg_bytes;
        let mut top = Level::from_region(top_region, top_segments, bps);
        let mut bottom = Level::from_region(bottom_region, bottom_segments, bps);
        fault::point("recover.opened");

        // ---- resize state machine ----
        let resume_state = meta.state();
        let resume_span = if resume_state != ResizeState::Stable {
            obs::phase_enter(obs::Phase::RecoveryResume)
        } else {
            None
        };
        let mut resumed_moved = 0u64;
        match resume_state {
            ResizeState::Stable => {}
            ResizeState::Allocating => {
                // Level number 2: the new level was never published. Apply
                // for it again and run the whole rehash (idempotent: after
                // the header wipe the new level is empty, duplicates
                // impossible). Re-adopting a surviving in-flight region
                // (rather than allocating afresh) matters when *recovery*
                // crashes later: the migrated records and the persisted
                // rehash cursor must land in the region the next recovery
                // will find, not in one that dies with this process.
                fault::point("recover.alloc.entered");
                let new_top = match new_top_region.take() {
                    Some(region) if region.len() == meta.new_top_segments() * seg_bytes => {
                        let l = Level::from_region(region, meta.new_top_segments(), bps);
                        l.wipe_headers();
                        l
                    }
                    _ => Level::try_new(meta.new_top_segments(), bps, &params.nvm)?,
                };
                let new_ocf = Ocf::new(new_top.n_buckets(), SLOTS_PER_BUCKET);
                meta.set_state(ResizeState::Rehashing);
                meta.set_rehash_progress(Some(0));
                fault::point("recover.alloc.restarted");
                resumed_moved =
                    Self::migrate(&bottom, &new_top, &new_ocf, 0, false, &meta, candidates(&params))
                        .0 as u64;
                Self::swap_levels_for_recovery(&meta, &mut top, &mut bottom, new_top);
            }
            ResizeState::Rehashing => {
                fault::point("recover.rehash.entered");
                let nts = meta.new_top_segments();
                if top.n_segments() == nts {
                    // The crash hit the finalize/swap window *after* the
                    // fully-migrated new level already became the pool's top
                    // (and the old top was demoted to bottom), but before
                    // the geometry / progress / state metadata stores all
                    // landed. Nothing to migrate — re-issue the remaining
                    // idempotent metadata stores.
                    meta.set_geometry(top.n_segments(), bottom.n_segments());
                    fault::point("recover.finalize.geometry");
                    meta.set_rehash_progress(None);
                    meta.set_state(ResizeState::Stable);
                    fault::point("recover.finalize.stable");
                } else {
                    // Level number 3: resume at the persisted cursor with
                    // duplicate checks (the cursor bucket may be half-moved).
                    // If the in-flight level's region did not survive the
                    // crash, the cursor is meaningless — the records behind
                    // it died with the region — so the rehash restarts from
                    // bucket 0 into a fresh level (the migration only ever
                    // copies, so every source record is still in `bottom`).
                    let (new_top, start) = match new_top_region.take() {
                        Some(region) => {
                            let l = Level::from_region(region, nts, bps);
                            (l, meta.rehash_progress().unwrap_or(0))
                        }
                        None => (Level::try_new(nts, bps, &params.nvm)?, 0),
                    };
                    fault::point("recover.rehash.resumed");
                    // Rebuild the new top's OCF from its persisted headers so
                    // the duplicate check and further inserts see prior work.
                    let new_ocf = Ocf::new(new_top.n_buckets(), SLOTS_PER_BUCKET);
                    rebuild_ocf_serial(&new_top, &new_ocf);
                    // The paper's "resizing threads … continue rehashing":
                    // remaining buckets are migrated in parallel stripes. The
                    // dup-checked migration is idempotent, so no finer-grained
                    // progress persistence is needed during recovery — if
                    // recovery itself crashes, the next one redoes the same
                    // idempotent work.
                    resumed_moved = migrate_parallel_dupcheck(
                        &bottom,
                        &new_top,
                        &new_ocf,
                        start,
                        candidates(&params),
                        threads,
                    ) as u64;
                    fault::point("recover.rehash.migrated");
                    Self::swap_levels_for_recovery(&meta, &mut top, &mut bottom, new_top);
                }
            }
        }
        if resume_state != ResizeState::Stable {
            obs::phase_record(obs::Phase::RecoveryResume, resume_span, resumed_moved);
        }

        // ---- rebuild DRAM structures (merged single scan) ----
        let rebuild_span = obs::phase_enter(obs::Phase::RecoveryRebuild);
        let ocf_top = Ocf::new(top.n_buckets(), SLOTS_PER_BUCKET);
        let ocf_bottom = Ocf::new(bottom.n_buckets(), SLOTS_PER_BUCKET);
        let hot = params
            .enable_hot_table
            .then(|| Arc::new(Self::make_hot(&params, top.n_slots() + bottom.n_slots())));
        let count = rebuild_parallel(
            &[(&top, &ocf_top), (&bottom, &ocf_bottom)],
            hot.as_deref(),
            threads,
        );
        obs::phase_record(obs::Phase::RecoveryRebuild, rebuild_span, count as u64);
        fault::point("recover.rebuilt");
        let total = t0.elapsed();
        obs::phase_record_ns(obs::Phase::RecoveryTotal, total.as_nanos() as u64, count as u64);
        obs::trace::milestone(obs::trace::Milestone::RecoveryDone);

        // ---- separate timings for table 1 (measurement-only passes) ----
        let t1 = Instant::now();
        let scratch_top = Ocf::new(top.n_buckets(), SLOTS_PER_BUCKET);
        let scratch_bottom = Ocf::new(bottom.n_buckets(), SLOTS_PER_BUCKET);
        rebuild_parallel(
            &[(&top, &scratch_top), (&bottom, &scratch_bottom)],
            None,
            threads,
        );
        let ocf_time = t1.elapsed();
        let t2 = Instant::now();
        if let Some(h) = hot.as_deref() {
            rebuild_hot_only(&[&top, &bottom], h, threads);
        }
        let hot_time = t2.elapsed();

        let sync = (params.sync_mode == SyncMode::Background && params.enable_hot_table)
            .then(|| SyncWriter::new(params.background_writers));
        // Re-open the value log: per-segment tail scan (stops at the first
        // torn record), then the index walk below recomputes live bytes
        // and quarantines pointers whose log record never became durable.
        let vlog = Arc::new(crate::vlog::Vlog::from_recovered(
            params.nvm.clone(),
            params.vlog_segment_bytes,
            pool.vlog,
        ));
        let table = Hdnh::from_parts(
            params,
            meta,
            Inner {
                generation: 0,
                top,
                bottom,
                ocf_top: Arc::new(ocf_top),
                ocf_bottom: Arc::new(ocf_bottom),
                hot,
            },
            sync,
            vlog,
        );
        table.set_count(count);
        table.rebuild_vlog_index();
        Ok((
            table,
            RecoveryTiming {
                ocf: ocf_time,
                hot: hot_time,
                total,
            },
        ))
    }

    fn swap_levels_for_recovery(meta: &Meta, top: &mut Level, bottom: &mut Level, new_top: Level) {
        let old_top = std::mem::replace(top, new_top);
        let old_top_segments = old_top.n_segments();
        *bottom = old_top;
        meta.set_geometry(top.n_segments(), old_top_segments);
        fault::point("recover.swap.geometry");
        meta.set_rehash_progress(None);
        fault::point("recover.swap.progress");
        meta.set_state(ResizeState::Stable);
        fault::point("recover.swap.stable");
    }

    /// Runs a resize but "crashes" after migrating `stop_after_buckets`
    /// bottom-level buckets, returning the pool exactly as a power failure
    /// during rehashing would leave it. Crash-consistency tests only.
    #[doc(hidden)]
    pub fn into_crashed_mid_resize(self, stop_after_buckets: usize) -> PersistentPool {
        let _m = self.maintenance_lock();
        let inner = unsafe { &*self.current.load(Ordering::SeqCst) };
        let bps = self.params().segment_bytes / BUCKET_BYTES;
        let new_top_segments = inner.top.n_segments() * 2;
        self.meta.set_new_top_segments(new_top_segments);
        self.meta.set_state(ResizeState::Allocating);
        let new_top = Level::new(new_top_segments, bps, &self.params().nvm);
        let new_ocf = Ocf::new(new_top.n_buckets(), SLOTS_PER_BUCKET);
        self.meta.set_state(ResizeState::Rehashing);
        self.meta.set_rehash_progress(Some(0));
        let stop = stop_after_buckets.min(inner.bottom.n_buckets());
        for b in 0..stop {
            let (header, recs) = inner.bottom.read_bucket(b);
            for (slot, rec) in recs.iter().enumerate() {
                if header & (1 << slot) != 0 {
                    let h = KeyHashes::of(&rec.key);
                    Self::insert_into_level(
                        &new_top,
                        &new_ocf,
                        rec,
                        &h,
                        candidates(self.params()),
                        header_slot_spilled(header, slot),
                    );
                }
            }
            self.meta.set_rehash_progress(Some(b + 1));
        }
        let pool = PersistentPool {
            meta: Arc::clone(self.meta.region()),
            top: Arc::clone(inner.top.region()),
            bottom: Arc::clone(inner.bottom.region()),
            new_top: Some(Arc::clone(new_top.region())),
            vlog: self.vlog.regions(),
        };
        *self.pending_new_top.lock() = Some((new_top, new_ocf));
        pool
    }

    /// Crashes after requesting a new level but before it becomes visible
    /// (the paper's level-number-2 scenario). Crash-consistency tests only.
    #[doc(hidden)]
    pub fn into_crashed_while_allocating(self) -> PersistentPool {
        let _m = self.maintenance_lock();
        let inner = unsafe { &*self.current.load(Ordering::SeqCst) };
        self.meta.set_new_top_segments(inner.top.n_segments() * 2);
        self.meta.set_state(ResizeState::Allocating);
        PersistentPool {
            meta: Arc::clone(self.meta.region()),
            top: Arc::clone(inner.top.region()),
            bottom: Arc::clone(inner.bottom.region()),
            new_top: None,
            vlog: self.vlog.regions(),
        }
    }

    pub(crate) fn from_parts(
        params: HdnhParams,
        meta: Meta,
        inner: Inner,
        sync: Option<SyncWriter>,
        vlog: Arc<crate::vlog::Vlog>,
    ) -> Hdnh {
        Hdnh::assemble(params, meta, inner, sync, vlog)
    }
}

/// Candidate buckets per level for the given configuration.
fn candidates(params: &HdnhParams) -> usize {
    if params.two_choice_segments {
        CANDIDATES_FULL
    } else {
        CANDIDATES_ONE_CHOICE
    }
}

/// Parallel, idempotent continuation of an interrupted rehash: every
/// remaining bottom-level bucket (from `start`) is migrated into `to`,
/// skipping records that already arrived before the crash. Source buckets
/// are disjoint across stripes and every key lives in exactly one source
/// bucket, so threads never race on the same key; slot allocation in the
/// target goes through the OCF's CAS locks. Returns the number of records
/// actually moved (dup-checked records already present are not counted).
fn migrate_parallel_dupcheck(
    from: &Level,
    to: &Level,
    to_ocf: &Ocf,
    start: usize,
    cands: usize,
    threads: usize,
) -> usize {
    let n = from.n_buckets();
    if start >= n {
        return 0;
    }
    let threads = threads.max(1).min(n - start);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut moved = 0usize;
                    let remaining = n - start;
                    let per = remaining.div_ceil(threads);
                    let (lo, hi) = (start + t * per, (start + (t + 1) * per).min(n));
                    for b in lo..hi {
                        let (header, recs) = from.read_bucket(b);
                        for (slot, rec) in recs.iter().enumerate() {
                            if header & (1 << slot) == 0 {
                                continue;
                            }
                            if !slot_checksum_ok(header, slot, rec) {
                                // Damaged source record: drop it here (the
                                // source level dies with the swap).
                                obs::count(obs::Counter::CorruptionDetected);
                                obs::count(obs::Counter::CorruptionQuarantined);
                                continue;
                            }
                            let h = KeyHashes::of(&rec.key);
                            if Hdnh::find_in_level(to, to_ocf, &rec.key, &h, cands).is_none() {
                                Hdnh::insert_into_level(
                                    to,
                                    to_ocf,
                                    rec,
                                    &h,
                                    cands,
                                    header_slot_spilled(header, slot),
                                );
                                moved += 1;
                            }
                        }
                    }
                    moved
                })
            })
            .collect();
        // Re-raise worker panics with their original payload: the fault
        // explorer discriminates injected crashes by downcasting it, and
        // scope's own "a scoped thread panicked" message would hide it.
        let mut moved = 0usize;
        for h in handles {
            match h.join() {
                Ok(m) => moved += m,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        moved
    })
}

/// Scans one level serially and installs OCF entries (used for the new top
/// during a rehash resume). Checksum-verifies each record; damaged slots
/// are quarantined (valid bit cleared, no OCF entry) so the dup-checked
/// migration re-copies the clean source copy instead.
fn rebuild_ocf_serial(level: &Level, ocf: &Ocf) {
    for b in 0..level.n_buckets() {
        let (header, recs) = level.read_bucket(b);
        for (slot, rec) in recs.iter().enumerate() {
            if header & (1 << slot) != 0 {
                if !slot_checksum_ok(header, slot, rec) {
                    obs::count(obs::Counter::CorruptionDetected);
                    obs::count(obs::Counter::CorruptionQuarantined);
                    level.commit_slot_invalid(b, slot);
                    continue;
                }
                let h = KeyHashes::of(&rec.key);
                ocf.install(b, slot, true, h.fp);
            }
        }
    }
}

/// The merged parallel rebuild: one scan fills OCF + hot table, counts live
/// records, and repairs duplicate keys (update-fallback crash window).
/// Returns the live count.
fn rebuild_parallel(
    levels: &[(&Level, &Ocf)],
    hot: Option<&HotTable>,
    threads: usize,
) -> usize {
    let threads = threads.max(1);
    // Pass 1 (parallel): per-batch scan installing OCF entries and caching
    // into the hot table; collect (key, location) lists for dedupe.
    let per_thread: Vec<Vec<(Key, usize, usize, usize)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut seen = Vec::new();
                    let mut rng = XorShift64Star::new(0xEC0_0000 + t as u64);
                    for (li, (level, ocf)) in levels.iter().enumerate() {
                        let n = level.n_buckets();
                        let per = n.div_ceil(threads);
                        let (lo, hi) = (t * per, ((t + 1) * per).min(n));
                        for b in lo..hi {
                            let (header, recs) = level.read_bucket(b);
                            for (slot, rec) in recs.iter().enumerate() {
                                if header & (1 << slot) == 0 {
                                    continue;
                                }
                                if !slot_checksum_ok(header, slot, rec) {
                                    // Media damage found by the recovery
                                    // scan: quarantine — the damaged bytes
                                    // never reach the OCF, the hot table,
                                    // or the live count.
                                    obs::count(obs::Counter::CorruptionDetected);
                                    obs::count(obs::Counter::CorruptionQuarantined);
                                    level.commit_slot_invalid(b, slot);
                                    continue;
                                }
                                let h = KeyHashes::of(&rec.key);
                                ocf.install(b, slot, true, h.fp);
                                if let Some(hot) = hot {
                                    hot.put(rec, h.h1, h.h2, h.fp, &mut rng);
                                }
                                seen.push((rec.key, li, b, slot));
                            }
                        }
                    }
                    seen
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload)))
            .collect()
    });

    // Pass 2 (serial): dedupe. First occurrence wins; later duplicates are
    // invalidated in both NVM and OCF.
    let mut first: HashMap<Key, ()> = HashMap::new();
    let mut count = 0usize;
    for (key, li, b, slot) in per_thread.into_iter().flatten() {
        if first.insert(key, ()).is_none() {
            count += 1;
        } else {
            let (level, ocf) = levels[li];
            fault::point("recover.dedup.clearing");
            level.commit_slot_invalid(b, slot);
            ocf.install(b, slot, false, 0);
            if let Some(hot) = hot {
                let h = KeyHashes::of(&key);
                // The cached copy may be the loser's value; drop it and let
                // the next search re-promote the authoritative one.
                hot.delete(&key, h.h1, h.h2, h.fp);
            }
        }
    }
    count
}

/// Hot-table-only rebuild (timing instrumentation for table 1).
fn rebuild_hot_only(levels: &[&Level], hot: &HotTable, threads: usize) {
    let threads = threads.max(1);
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut rng = XorShift64Star::new(0x407_0000 + t as u64);
                for level in levels {
                    let n = level.n_buckets();
                    let per = n.div_ceil(threads);
                    let (lo, hi) = (t * per, ((t + 1) * per).min(n));
                    for b in lo..hi {
                        let (header, recs) = level.read_bucket(b);
                        for (slot, rec) in recs.iter().enumerate() {
                            if header & (1 << slot) != 0 {
                                let h = KeyHashes::of(&rec.key);
                                hot.put(rec, h.h1, h.h2, h.fp, &mut rng);
                            }
                        }
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdnh_common::Value;
    use hdnh_nvm::NvmOptions;

    fn strict_params() -> HdnhParams {
        HdnhParams::builder()
            .segment_bytes(1024)
            .initial_bottom_segments(2)
            .nvm(NvmOptions::strict())
            .build()
            .unwrap()
    }

    fn k(id: u64) -> Key {
        Key::from_u64(id)
    }
    fn v(x: u64) -> Value {
        Value::from_u64(x)
    }

    #[test]
    fn recover_after_normal_shutdown() {
        let t = Hdnh::new(strict_params());
        for i in 0..300 {
            t.insert(&k(i), &v(i * 7)).unwrap();
        }
        let pool = t.into_pool();
        let r = Hdnh::recover(strict_params(), pool, 4);
        assert_eq!(r.len(), 300);
        for i in 0..300 {
            assert_eq!(r.get(&k(i)).unwrap().unwrap().as_u64(), i * 7, "key {i}");
        }
        // Hot table was warmed during recovery.
        assert!(!r.hot_table().unwrap().is_empty());
    }

    #[test]
    fn recover_after_crash_preserves_acknowledged_inserts() {
        for seed in 0..10 {
            let t = Hdnh::new(strict_params());
            for i in 0..200 {
                t.insert(&k(i), &v(i)).unwrap();
            }
            let pool = t.into_pool();
            pool.crash(seed);
            let r = Hdnh::recover(strict_params(), pool, 2);
            assert_eq!(r.len(), 200, "seed {seed}");
            for i in 0..200 {
                assert_eq!(r.get(&k(i)).unwrap().unwrap().as_u64(), i, "seed {seed} key {i}");
            }
        }
    }

    #[test]
    fn recover_after_crash_preserves_updates_and_deletes() {
        for seed in 0..10 {
            let t = Hdnh::new(strict_params());
            for i in 0..200 {
                t.insert(&k(i), &v(i)).unwrap();
            }
            for i in 0..100 {
                t.update(&k(i), &v(i + 10_000)).unwrap();
            }
            for i in 150..200 {
                t.remove(&k(i)).unwrap();
            }
            let pool = t.into_pool();
            pool.crash(1000 + seed);
            let r = Hdnh::recover(strict_params(), pool, 2);
            assert_eq!(r.len(), 150, "seed {seed}");
            for i in 0..100 {
                assert_eq!(r.get(&k(i)).unwrap().unwrap().as_u64(), i + 10_000, "seed {seed} key {i}");
            }
            for i in 100..150 {
                assert_eq!(r.get(&k(i)).unwrap().unwrap().as_u64(), i);
            }
            for i in 150..200 {
                assert_eq!(r.get(&k(i)).unwrap(), None, "deleted key {i} resurrected");
            }
        }
    }

    #[test]
    fn unacknowledged_insert_never_half_visible() {
        // Write records without commit and crash: the slot must be
        // invisible (I1). Exercised via the public API by crashing right
        // after a batch — every *acknowledged* op is visible, and len()
        // equals the scan count (no torn extras).
        for seed in 0..20 {
            let t = Hdnh::new(strict_params());
            for i in 0..50 {
                t.insert(&k(i), &v(i)).unwrap();
            }
            let pool = t.into_pool();
            pool.crash(31_337 + seed);
            let r = Hdnh::recover(strict_params(), pool, 1);
            // Exactly the 50 acknowledged records, none torn.
            assert_eq!(r.len(), 50);
            for i in 0..50 {
                assert_eq!(r.get(&k(i)).unwrap().unwrap().as_u64(), i);
            }
        }
    }

    #[test]
    fn recover_resumes_interrupted_rehash() {
        let params = strict_params();
        let t = Hdnh::new(params.clone());
        for i in 0..400 {
            t.insert(&k(i), &v(i + 1)).unwrap();
        }
        let n_bottom_buckets = t.meta_bottom_buckets();
        for stop in [0, 1, n_bottom_buckets / 2, n_bottom_buckets] {
            let t = Hdnh::new(params.clone());
            for i in 0..400 {
                t.insert(&k(i), &v(i + 1)).unwrap();
            }
            let before_len = t.len();
            let pool = t.into_crashed_mid_resize(stop);
            pool.crash(42 + stop as u64);
            let r = Hdnh::recover(params.clone(), pool, 2);
            assert_eq!(r.len(), before_len, "stop={stop}");
            for i in 0..400 {
                assert_eq!(r.get(&k(i)).unwrap().unwrap().as_u64(), i + 1, "stop={stop} key={i}");
            }
            // Table is back in stable state with consistent geometry.
            assert_eq!(r.meta.state(), ResizeState::Stable);
        }
    }

    #[test]
    fn recover_from_allocating_state() {
        let params = strict_params();
        let t = Hdnh::new(params.clone());
        for i in 0..300 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let pool = t.into_crashed_while_allocating();
        pool.crash(7);
        let r = Hdnh::recover(params.clone(), pool, 2);
        assert_eq!(r.len(), 300);
        for i in 0..300 {
            assert_eq!(r.get(&k(i)).unwrap().unwrap().as_u64(), i);
        }
        // The interrupted resize completed during recovery: geometry grew.
        assert_eq!(r.meta.state(), ResizeState::Stable);
        assert!(r.meta.top_segments() > params.initial_bottom_segments * 2);
    }

    #[test]
    fn recovered_table_accepts_new_operations() {
        let t = Hdnh::new(strict_params());
        for i in 0..100 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let pool = t.into_pool();
        pool.crash(99);
        let r = Hdnh::recover(strict_params(), pool, 2);
        for i in 100..1500 {
            r.insert(&k(i), &v(i)).unwrap();
        }
        assert!(r.resize_count() > 0 || r.len() == 1500);
        for i in 0..1500 {
            assert_eq!(r.get(&k(i)).unwrap().unwrap().as_u64(), i);
        }
    }

    #[test]
    fn recovery_timing_reports_nonzero() {
        let t = Hdnh::new(strict_params());
        for i in 0..500 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let pool = t.into_pool();
        let (r, timing) = Hdnh::recover_timed(strict_params(), pool, 2);
        assert_eq!(r.len(), 500);
        assert!(timing.total >= Duration::ZERO);
        assert!(timing.ocf <= timing.total + timing.hot + timing.ocf); // sanity
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn recover_with_wrong_geometry_panics() {
        let t = Hdnh::new(strict_params());
        let pool = t.into_pool();
        let wrong = HdnhParams {
            segment_bytes: 2048,
            ..strict_params()
        };
        let _ = Hdnh::recover(wrong, pool, 1);
    }
}
