//! Plain-old-data marker trait for typed region access.

/// Types that can be copied to and from NVM as raw bytes.
///
/// # Safety
///
/// Implementors must be valid for **any** bit pattern and contain no padding
/// whose content matters (a fresh region is zero-filled; recovery code reads
/// structures that may never have been written). All integer types and fixed
/// byte arrays qualify.
pub unsafe trait Pod: Copy + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl<const N: usize> Pod for [u8; N] {}
unsafe impl<const N: usize> Pod for [u64; N] {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_pod<T: Pod>() {}

    #[test]
    fn primitive_impls_exist() {
        assert_pod::<u8>();
        assert_pod::<u64>();
        assert_pod::<[u8; 31]>();
        assert_pod::<[u64; 4]>();
    }
}
