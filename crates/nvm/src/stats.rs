//! Media access accounting.
//!
//! Every argument in the paper reduces to counts of NVM media events on the
//! critical path: block reads (the OCF exists to remove them), line writes
//! and flushes (write optimization), and fences. [`NvmStats`] counts all of
//! them with relaxed atomics; [`StatsSnapshot`] supports before/after
//! diffing so tests can assert statements like "a negative search with OCF
//! performs zero NVM block reads".

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters for one region (or one region group).
#[derive(Debug, Default)]
pub struct NvmStats {
    /// Read operations issued.
    pub reads: AtomicU64,
    /// Bytes read.
    pub read_bytes: AtomicU64,
    /// Distinct 256-byte media blocks touched by reads.
    pub read_blocks: AtomicU64,
    /// Write operations issued.
    pub writes: AtomicU64,
    /// Bytes written.
    pub write_bytes: AtomicU64,
    /// Distinct cachelines touched by writes.
    pub write_lines: AtomicU64,
    /// `clwb`-equivalent flushes issued (one per covered line).
    pub flushes: AtomicU64,
    /// `sfence`-equivalent fences issued.
    pub fences: AtomicU64,
}

/// A point-in-time copy of [`NvmStats`], with subtraction for deltas.
///
/// The fields mix two units, and asserting on the wrong one is a classic
/// footgun:
///
/// * **API events** (`reads`, `writes`, `fences`) count *calls into the
///   device* — one `read_record` is one read regardless of size.
/// * **Media events** (`read_blocks`, `write_lines`, `flushes`) count
///   *device work*: 256-byte read blocks (the paper's XPLine-granularity
///   read unit) and 64-byte written/flushed cachelines. One API read can
///   touch several blocks, and one API write several lines.
/// * `read_bytes` / `write_bytes` are plain byte totals.
///
/// The paper's efficiency arguments are all in media units; use the API
/// counts only to normalize (see [`per_op`](Self::per_op)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Read operations issued (API events, size-independent).
    pub reads: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Distinct 256-byte media blocks touched by reads (media events).
    pub read_blocks: u64,
    /// Write operations issued (API events, size-independent).
    pub writes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Distinct 64-byte cachelines touched by writes (media events).
    pub write_lines: u64,
    /// `clwb`-equivalent flushes issued, one per covered line (media
    /// events).
    pub flushes: u64,
    /// `sfence`-equivalent fences issued (API events).
    pub fences: u64,
}

/// A [`StatsSnapshot`] normalized to a per-operation view: every field
/// divided by an op count. Shared by benches and tests so nobody
/// hand-rolls the divisions (and the divide-by-zero guard) differently.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PerOpStats {
    /// Read operations per op.
    pub reads: f64,
    /// Bytes read per op.
    pub read_bytes: f64,
    /// 256-byte media blocks read per op.
    pub read_blocks: f64,
    /// Write operations per op.
    pub writes: f64,
    /// Bytes written per op.
    pub write_bytes: f64,
    /// Cachelines written per op.
    pub write_lines: f64,
    /// Line flushes per op.
    pub flushes: f64,
    /// Fences per op.
    pub fences: f64,
}

impl NvmStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn on_read(&self, bytes: usize, blocks: usize) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.read_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.read_blocks.fetch_add(blocks as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn on_write(&self, bytes: usize, lines: usize) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.write_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.write_lines.fetch_add(lines as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn on_flush(&self, lines: usize) {
        self.flushes.fetch_add(lines as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn on_fence(&self) {
        self.fences.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            read_blocks: self.read_blocks.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
            write_lines: self.write_lines.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.read_bytes.store(0, Ordering::Relaxed);
        self.read_blocks.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.write_bytes.store(0, Ordering::Relaxed);
        self.write_lines.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Element-wise saturating difference `self - earlier`.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            read_bytes: self.read_bytes.saturating_sub(earlier.read_bytes),
            read_blocks: self.read_blocks.saturating_sub(earlier.read_blocks),
            writes: self.writes.saturating_sub(earlier.writes),
            write_bytes: self.write_bytes.saturating_sub(earlier.write_bytes),
            write_lines: self.write_lines.saturating_sub(earlier.write_lines),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            fences: self.fences.saturating_sub(earlier.fences),
        }
    }

    /// Sum of all media-facing events — a crude "NVM pressure" scalar used
    /// in ablation summaries.
    ///
    /// Deliberately sums **media units plus fences**, not API events: it
    /// uses `read_blocks` (256-byte blocks actually pulled from media)
    /// rather than `reads` (API calls, which may each touch several
    /// blocks), and `write_lines`/`flushes` rather than `writes`. Fences
    /// are API events but each one stalls the write pipeline, so they
    /// count as pressure too. `reads`/`writes`/byte totals are excluded —
    /// adding call counts to block counts would double-count every access
    /// in mismatched units.
    pub fn total_events(&self) -> u64 {
        self.read_blocks + self.write_lines + self.flushes + self.fences
    }

    /// Normalizes every field by `ops` operations. Returns all zeros when
    /// `ops` is 0 (no NaNs in reports).
    pub fn per_op(&self, ops: u64) -> PerOpStats {
        if ops == 0 {
            return PerOpStats::default();
        }
        let d = ops as f64;
        PerOpStats {
            reads: self.reads as f64 / d,
            read_bytes: self.read_bytes as f64 / d,
            read_blocks: self.read_blocks as f64 / d,
            writes: self.writes as f64 / d,
            write_bytes: self.write_bytes as f64 / d,
            write_lines: self.write_lines as f64 / d,
            flushes: self.flushes as f64 / d,
            fences: self.fences as f64 / d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NvmStats::new();
        s.on_read(31, 1);
        s.on_read(256, 1);
        s.on_write(8, 1);
        s.on_flush(2);
        s.on_fence();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.read_bytes, 287);
        assert_eq!(snap.read_blocks, 2);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.write_lines, 1);
        assert_eq!(snap.flushes, 2);
        assert_eq!(snap.fences, 1);
    }

    #[test]
    fn since_computes_delta() {
        let s = NvmStats::new();
        s.on_read(10, 1);
        let before = s.snapshot();
        s.on_read(20, 2);
        s.on_fence();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.read_bytes, 20);
        assert_eq!(delta.read_blocks, 2);
        assert_eq!(delta.fences, 1);
    }

    #[test]
    fn reset_zeroes() {
        let s = NvmStats::new();
        s.on_write(100, 2);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn total_events_sums_media_facing_counters() {
        let snap = StatsSnapshot {
            read_blocks: 3,
            write_lines: 2,
            flushes: 4,
            fences: 1,
            // API-event counters must NOT contribute.
            reads: 100,
            writes: 100,
            read_bytes: 1_000,
            write_bytes: 1_000,
        };
        assert_eq!(snap.total_events(), 10);
    }

    #[test]
    fn per_op_normalizes_and_guards_zero() {
        let snap = StatsSnapshot {
            reads: 10,
            read_bytes: 310,
            read_blocks: 20,
            writes: 5,
            write_bytes: 40,
            write_lines: 5,
            flushes: 5,
            fences: 5,
        };
        let per = snap.per_op(10);
        assert_eq!(per.reads, 1.0);
        assert_eq!(per.read_bytes, 31.0);
        assert_eq!(per.read_blocks, 2.0);
        assert_eq!(per.writes, 0.5);
        assert_eq!(per.fences, 0.5);
        assert_eq!(snap.per_op(0), PerOpStats::default());
    }
}
