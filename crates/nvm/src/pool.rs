//! Pool directory: names and allocates the files behind file-backed
//! regions, and collects sticky I/O faults from the flush path.
//!
//! A pool is one directory holding `meta.dat` (the 256-byte persisted
//! [`Meta`] block), `seg-<id>.dat` files (one per level region), and a
//! `superblock` written by the core crate. Region files are classified on
//! reopen by *size alone* — level sizes are always distinct (each resize
//! doubles), so the geometry in `meta.dat` maps every surviving file to
//! its role without any per-file header.
//!
//! Fault handling: `fence()` runs on the hot write path where an error
//! return would poison every caller signature, so a failed `msync` is
//! recorded *here* (sticky, first-error-wins) and surfaced by the table
//! as `HdnhError::Io` on the next acknowledgement boundary instead of
//! being silently dropped or panicking.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::mapfile::NvmIoError;

/// Filename of the persisted meta block inside a pool directory.
pub const META_FILE: &str = "meta.dat";

/// A pool directory handle: allocates region file names and records
/// flush-path faults.
#[derive(Debug)]
pub struct PoolDir {
    dir: PathBuf,
    next_id: AtomicU64,
    fault_flag: AtomicBool,
    fault: Mutex<Option<NvmIoError>>,
}

impl PoolDir {
    /// Creates the directory (and parents) if needed and returns a fresh
    /// handle. Pre-existing region files are *not* removed; callers that
    /// want a truly fresh pool check for them first.
    pub fn create(dir: &Path) -> Result<PoolDir, NvmIoError> {
        fs::create_dir_all(dir).map_err(|e| NvmIoError::new("mkdir", dir, e))?;
        Ok(PoolDir {
            dir: dir.to_path_buf(),
            next_id: AtomicU64::new(0),
            fault_flag: AtomicBool::new(false),
            fault: Mutex::new(None),
        })
    }

    /// Opens an existing pool directory, seeding the region-id counter
    /// past every `seg-<id>.dat` and `vlog-<id>.dat` already present so
    /// new allocations never collide with survivors.
    pub fn open(dir: &Path) -> Result<PoolDir, NvmIoError> {
        let mut max_id = 0u64;
        for f in Self::scan_region_files(dir)? {
            if let Some(id) = seg_id(&f) {
                max_id = max_id.max(id + 1);
            }
        }
        for f in Self::scan_vlog_files(dir)? {
            if let Some(id) = vlog_id(&f) {
                max_id = max_id.max(id + 1);
            }
        }
        Ok(PoolDir {
            dir: dir.to_path_buf(),
            next_id: AtomicU64::new(max_id),
            fault_flag: AtomicBool::new(false),
            fault: Mutex::new(None),
        })
    }

    /// The pool directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Path of the persisted meta block file.
    pub fn meta_path(&self) -> PathBuf {
        self.dir.join(META_FILE)
    }

    /// All `seg-*.dat` files currently in the directory (unordered).
    /// Value-log files (`vlog-*.dat`) are deliberately excluded: level
    /// regions are classified by size on reopen and the log files must
    /// never enter that classification.
    pub fn region_files(&self) -> Result<Vec<PathBuf>, NvmIoError> {
        Self::scan_region_files(&self.dir)
    }

    /// All `vlog-*.dat` (value-log segment) files currently in the
    /// directory (unordered).
    pub fn vlog_files(&self) -> Result<Vec<PathBuf>, NvmIoError> {
        Self::scan_vlog_files(&self.dir)
    }

    fn scan_region_files(dir: &Path) -> Result<Vec<PathBuf>, NvmIoError> {
        let rd = fs::read_dir(dir).map_err(|e| NvmIoError::new("readdir", dir, e))?;
        let mut out = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| NvmIoError::new("readdir", dir, e))?;
            let p = entry.path();
            if seg_id(&p).is_some() {
                out.push(p);
            }
        }
        Ok(out)
    }

    fn scan_vlog_files(dir: &Path) -> Result<Vec<PathBuf>, NvmIoError> {
        let rd = fs::read_dir(dir).map_err(|e| NvmIoError::new("readdir", dir, e))?;
        let mut out = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| NvmIoError::new("readdir", dir, e))?;
            let p = entry.path();
            if vlog_id(&p).is_some() {
                out.push(p);
            }
        }
        Ok(out)
    }

    /// Picks the file path for a new region. `"meta"` maps to the fixed
    /// meta filename (at most one per pool); `"vlog"` gets a fresh
    /// `vlog-<id>.dat` (a value-log segment, outside the size-classified
    /// level files); anything else gets a fresh `seg-<id>.dat`.
    pub fn new_region_path(&self, hint: &str) -> Result<PathBuf, NvmIoError> {
        if hint == "meta" {
            let p = self.meta_path();
            if p.exists() {
                return Err(NvmIoError::msg(
                    "create",
                    &p,
                    "meta region already exists in this pool",
                ));
            }
            return Ok(p);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if hint == "vlog" {
            return Ok(self.dir.join(format!("vlog-{id}.dat")));
        }
        Ok(self.dir.join(format!("seg-{id}.dat")))
    }

    /// Records a flush-path fault. First error wins; later ones are
    /// dropped (they are almost always the same failing device).
    pub fn record_fault(&self, err: NvmIoError) {
        let mut slot = self.fault.lock();
        if slot.is_none() {
            *slot = Some(err);
            self.fault_flag.store(true, Ordering::Release);
        }
    }

    /// Cheap check: has any flush failed since the pool opened?
    #[inline]
    pub fn has_fault(&self) -> bool {
        self.fault_flag.load(Ordering::Acquire)
    }

    /// The recorded fault, if any (left in place — the pool stays
    /// poisoned until reopened).
    pub fn fault(&self) -> Option<NvmIoError> {
        if !self.has_fault() {
            return None;
        }
        self.fault.lock().clone()
    }
}

/// Parses `seg-<id>.dat` → `id`.
fn seg_id(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("seg-")?.strip_suffix(".dat")?;
    rest.parse().ok()
}

/// Parses `vlog-<id>.dat` → `id`.
pub fn vlog_id(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("vlog-")?.strip_suffix(".dat")?;
    rest.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hdnh_pooldir_{}_{name}", std::process::id()))
    }

    #[test]
    fn naming_and_reopen_skips_used_ids() {
        let d = tmp("naming");
        let _ = fs::remove_dir_all(&d);
        let pool = PoolDir::create(&d).unwrap();
        let m = pool.new_region_path("meta").unwrap();
        assert_eq!(m, d.join("meta.dat"));
        let s0 = pool.new_region_path("seg").unwrap();
        let s1 = pool.new_region_path("seg").unwrap();
        assert_eq!(s0, d.join("seg-0.dat"));
        assert_eq!(s1, d.join("seg-1.dat"));
        fs::write(&s0, b"x").unwrap();
        fs::write(&s1, b"x").unwrap();
        fs::write(d.join("superblock"), b"x").unwrap(); // not a region file

        let pool2 = PoolDir::open(&d).unwrap();
        let mut files = pool2.region_files().unwrap();
        files.sort();
        assert_eq!(files, vec![s0, s1]);
        assert_eq!(pool2.new_region_path("seg").unwrap(), d.join("seg-2.dat"));
        // meta.dat doesn't exist on disk yet, so "meta" is still free.
        assert!(pool2.new_region_path("meta").is_ok());
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn meta_collision_is_an_error() {
        let d = tmp("metacoll");
        let _ = fs::remove_dir_all(&d);
        let pool = PoolDir::create(&d).unwrap();
        fs::write(pool.meta_path(), b"x").unwrap();
        let e = pool.new_region_path("meta").unwrap_err();
        assert!(e.msg.contains("already exists"), "{e}");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn fault_is_sticky_first_wins() {
        let d = tmp("fault");
        let _ = fs::remove_dir_all(&d);
        let pool = PoolDir::create(&d).unwrap();
        assert!(!pool.has_fault());
        assert!(pool.fault().is_none());
        pool.record_fault(NvmIoError::msg("msync", &d, "first"));
        pool.record_fault(NvmIoError::msg("msync", &d, "second"));
        assert!(pool.has_fault());
        assert_eq!(pool.fault().unwrap().msg, "first");
        fs::remove_dir_all(&d).unwrap();
    }
}
