//! File-backed region storage: a `MAP_SHARED` memory map over a pool file.
//!
//! This is the "real durability" half of the backend split (the heap
//! simulator is the other). A mapped file survives `kill -9` of the
//! process — dirty pages live in the kernel page cache and are written
//! back regardless of how the process died — so crash-consistency claims
//! can be tested against *actual* process death instead of the simulated
//! media model. `msync` stands in for the flush path on real hardware:
//! power-loss durability (as opposed to process-death durability) is only
//! as strong as the last sync.
//!
//! No external crates: `mmap`/`munmap`/`msync` are declared directly
//! against libc (std already links it on every supported Unix), and file
//! sizing goes through [`std::fs::File::set_len`] (`ftruncate`).

use std::fmt;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;

/// A failed file/mapping operation with enough context to act on: which
/// syscall, which file, what the OS said. Converted to `HdnhError::Io`
/// by the core crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NvmIoError {
    /// The failing operation (`"mmap"`, `"msync"`, `"ftruncate"`, ...).
    pub op: &'static str,
    /// The file (or directory) the operation addressed.
    pub path: PathBuf,
    /// OS error text.
    pub msg: String,
}

impl NvmIoError {
    pub(crate) fn new(op: &'static str, path: &Path, err: std::io::Error) -> Self {
        NvmIoError {
            op,
            path: path.to_path_buf(),
            msg: err.to_string(),
        }
    }

    pub(crate) fn msg(op: &'static str, path: &Path, msg: impl Into<String>) -> Self {
        NvmIoError {
            op,
            path: path.to_path_buf(),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for NvmIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} failed for {}: {}", self.op, self.path.display(), self.msg)
    }
}

impl std::error::Error for NvmIoError {}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_SHARED: c_int = 1;
    pub const MS_ASYNC: c_int = 1;
    pub const MS_SYNC: c_int = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn msync(addr: *mut c_void, len: usize, flags: c_int) -> c_int;
    }
}

/// Page size used to align `msync` ranges. 4 KiB is correct for every
/// platform this runs on; a larger true page size only makes the aligned
/// range cover more than needed, which is harmless.
const PAGE: usize = 4096;

/// A shared, writable memory map over one pool file, exposed as a slice
/// of `AtomicU64` words (the same representation the heap backend uses,
/// so every region access stays defined behaviour under concurrency).
pub struct FileMap {
    ptr: *mut u8,
    map_len: usize,
    file: File,
    path: PathBuf,
}

// SAFETY: the mapping is plain memory accessed exclusively through
// `&[AtomicU64]`; the raw pointer is only used for mapping lifecycle
// (msync/munmap), which the owning region serializes.
unsafe impl Send for FileMap {}
unsafe impl Sync for FileMap {}

impl FileMap {
    /// Creates (or truncates) `path` at `len` bytes and maps it shared.
    #[cfg(unix)]
    pub fn create(path: &Path, len: usize) -> Result<FileMap, NvmIoError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| NvmIoError::new("open", path, e))?;
        // ftruncate: size the file before mapping (mapping past EOF
        // SIGBUSes on access).
        file.set_len(Self::file_len(len))
            .map_err(|e| NvmIoError::new("ftruncate", path, e))?;
        Self::map(file, path, len)
    }

    /// Maps an existing file shared; the region length is the file length.
    #[cfg(unix)]
    pub fn open(path: &Path) -> Result<(FileMap, usize), NvmIoError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| NvmIoError::new("open", path, e))?;
        let len = file
            .metadata()
            .map_err(|e| NvmIoError::new("stat", path, e))?
            .len() as usize;
        let map = Self::map(file, path, len)?;
        Ok((map, len))
    }

    #[cfg(unix)]
    fn map(file: File, path: &Path, len: usize) -> Result<FileMap, NvmIoError> {
        use std::os::fd::AsRawFd;
        let map_len = (Self::file_len(len) as usize).max(8);
        // SAFETY: mapping a file we own at offset 0; failure is checked.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                map_len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(NvmIoError::new("mmap", path, std::io::Error::last_os_error()));
        }
        Ok(FileMap {
            ptr: ptr as *mut u8,
            map_len,
            file,
            path: path.to_path_buf(),
        })
    }

    #[cfg(not(unix))]
    pub fn create(path: &Path, _len: usize) -> Result<FileMap, NvmIoError> {
        Err(NvmIoError::msg("mmap", path, "file-backed regions require a Unix platform"))
    }

    #[cfg(not(unix))]
    pub fn open(path: &Path) -> Result<(FileMap, usize), NvmIoError> {
        Err(NvmIoError::msg("mmap", path, "file-backed regions require a Unix platform"))
    }

    /// Region bytes rounded up to whole words (the mapped file is always
    /// a multiple of 8 so the word slice covers every byte).
    fn file_len(len: usize) -> u64 {
        len.div_ceil(8) as u64 * 8
    }

    /// The mapping as atomic words. An mmap is page-aligned, so the
    /// 8-byte alignment `AtomicU64` needs always holds.
    #[inline]
    pub fn words(&self, n_words: usize) -> &[AtomicU64] {
        debug_assert!(n_words * 8 <= self.map_len);
        // SAFETY: the mapping is live for `self`'s lifetime, page-aligned,
        // at least `n_words * 8` bytes, and AtomicU64 accepts any bit
        // pattern. MAP_SHARED memory is ordinary memory to the CPU.
        unsafe { std::slice::from_raw_parts(self.ptr as *const AtomicU64, n_words) }
    }

    /// The backing file's path.
    #[inline]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `msync` the pages covering `[off, off+len)`. `blocking` selects
    /// `MS_SYNC` (wait for the write-back) vs `MS_ASYNC` (schedule it) —
    /// the async form is the per-fence fast path, the sync form the
    /// clean-shutdown path.
    #[cfg(unix)]
    pub fn sync_range(&self, off: usize, len: usize, blocking: bool) -> Result<(), NvmIoError> {
        if len == 0 {
            return Ok(());
        }
        let lo = (off / PAGE) * PAGE;
        let hi = (off + len).min(self.map_len);
        let flags = if blocking { sys::MS_SYNC } else { sys::MS_ASYNC };
        // SAFETY: `lo..hi` lies inside the live mapping and lo is
        // page-aligned as msync requires.
        let rc = unsafe { sys::msync(self.ptr.add(lo) as *mut _, hi - lo, flags) };
        if rc != 0 {
            return Err(NvmIoError::new("msync", &self.path, std::io::Error::last_os_error()));
        }
        Ok(())
    }

    #[cfg(not(unix))]
    pub fn sync_range(&self, _off: usize, _len: usize, _blocking: bool) -> Result<(), NvmIoError> {
        Ok(())
    }

    /// Full-strength durability point: `MS_SYNC` over the whole mapping
    /// plus `fsync` of the file (covers metadata too).
    pub fn sync_all(&self) -> Result<(), NvmIoError> {
        self.sync_range(0, self.map_len, true)?;
        self.file
            .sync_all()
            .map_err(|e| NvmIoError::new("fsync", &self.path, e))
    }
}

impl Drop for FileMap {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: the pointer came from a successful mmap of map_len bytes
        // and nothing dereferences it after drop.
        unsafe {
            sys::munmap(self.ptr as *mut _, self.map_len);
        }
    }
}

impl fmt::Debug for FileMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileMap")
            .field("path", &self.path)
            .field("map_len", &self.map_len)
            .finish()
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hdnh_mapfile_{}_{name}", std::process::id()))
    }

    #[test]
    fn create_write_reopen_roundtrip() {
        let p = tmp("roundtrip");
        {
            let m = FileMap::create(&p, 4096).unwrap();
            m.words(512)[7].store(0xDEAD_BEEF, Ordering::Relaxed);
            m.sync_all().unwrap();
        }
        let (m, len) = FileMap::open(&p).unwrap();
        assert_eq!(len, 4096);
        assert_eq!(m.words(512)[7].load(Ordering::Relaxed), 0xDEAD_BEEF);
        drop(m);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn unsynced_write_survives_unmap() {
        // The page cache keeps dirty mmap writes alive without msync —
        // the property the kill -9 harness leans on.
        let p = tmp("unsynced");
        {
            let m = FileMap::create(&p, 256).unwrap();
            m.words(32)[0].store(42, Ordering::Relaxed);
        }
        let (m, _) = FileMap::open(&p).unwrap();
        assert_eq!(m.words(32)[0].load(Ordering::Relaxed), 42);
        drop(m);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn open_missing_file_is_typed() {
        let e = FileMap::open(Path::new("/nonexistent/hdnh.pool")).unwrap_err();
        assert_eq!(e.op, "open");
        assert!(e.to_string().contains("/nonexistent/hdnh.pool"), "{e}");
    }

    #[test]
    fn sync_range_aligns_to_pages() {
        let p = tmp("range");
        let m = FileMap::create(&p, 16384).unwrap();
        m.words(2048)[600].store(1, Ordering::Relaxed);
        m.sync_range(4800, 64, false).unwrap();
        m.sync_range(0, 16384, true).unwrap();
        drop(m);
        std::fs::remove_file(&p).unwrap();
    }
}
