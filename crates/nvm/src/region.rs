//! The simulated persistent-memory region.
//!
//! A region is a zero-initialized, offset-addressed byte range backed by an
//! array of `AtomicU64` words. Backing the region with atomics (rather than
//! raw bytes) makes every concurrent access *defined behaviour*: full words
//! are plain relaxed loads/stores, and sub-word writes merge via a CAS loop
//! so two threads writing adjacent packed slots can never clobber each
//! other's bytes. This mirrors real persistent-memory programming, where the
//! data structure's own concurrency control — not the memory — provides
//! ordering, while keeping the simulator free of UB.
//!
//! In **strict mode** the region additionally keeps a shadow *media* image
//! and per-cacheline dirty/staged tracking implementing the ADR persistence
//! model; see [`NvmRegion::crash`].

use std::collections::HashSet;
use std::mem::{size_of, MaybeUninit};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use std::sync::Arc;

use hdnh_common::rng::XorShift64Star;
use parking_lot::Mutex;

use crate::bandwidth::{BandwidthLimiter, BandwidthModel};
use crate::fault;
use crate::latency::LatencyModel;
use crate::mapfile::{FileMap, NvmIoError};
use crate::pod::Pod;
use crate::pool::PoolDir;
use crate::shadow::ShadowMedia;
use crate::stats::NvmStats;

/// CPU cacheline size: flush granularity.
pub const CACHELINE: usize = 64;
/// Optane AEP internal access granularity (XPLine): read-latency granularity.
pub const NVM_BLOCK: usize = 256;

/// Where region bytes live.
#[derive(Clone, Debug, Default)]
pub enum Backend {
    /// Heap-allocated simulator (the default): fast, supports the strict
    /// shadow-media crash model, dies with the process.
    #[default]
    Heap,
    /// `MAP_SHARED` files inside a pool directory: survives real process
    /// death, flushes via `msync`. Mutually exclusive with strict mode
    /// (the shadow-media model simulates losses a mapped file never has).
    Pool(Arc<PoolDir>),
}

impl Backend {
    /// The pool directory, when file-backed.
    pub fn pool(&self) -> Option<&Arc<PoolDir>> {
        match self {
            Backend::Heap => None,
            Backend::Pool(p) => Some(p),
        }
    }
}

/// When `fence()` may acknowledge durability on a file-backed region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `msync(MS_ASYNC)`: schedule writeback and return immediately. Fast,
    /// survives process death (the page cache keeps the bytes), but **not
    /// power-loss safe** — nothing guarantees the bytes reached media when
    /// the write was acknowledged.
    #[default]
    Async,
    /// `msync(MS_SYNC)`: block until the flushed range is durably on media
    /// before the fence returns. The only power-loss-safe policy.
    Sync,
}

impl SyncPolicy {
    /// Stable name used in flags/exposition.
    pub fn name(self) -> &'static str {
        match self {
            SyncPolicy::Async => "async",
            SyncPolicy::Sync => "sync",
        }
    }
}

/// Configuration for a region.
#[derive(Clone, Debug)]
pub struct NvmOptions {
    /// Latency surcharge profile.
    pub latency: LatencyModel,
    /// Shared bandwidth ceiling. Regions built from clones of the same
    /// options share the limiter, modeling DIMMs behind one controller.
    pub bandwidth: Option<Arc<BandwidthLimiter>>,
    /// Enable the shadow media image + crash simulation. Costs a mutex per
    /// write, so it is meant for (mostly single-threaded) consistency tests,
    /// not benchmarks.
    pub strict: bool,
    /// In strict mode, tear unflushed lines at 8-byte granularity on crash
    /// (AEP guarantees 8-byte atomicity, nothing larger).
    pub tear_words: bool,
    /// Storage backend: heap simulator (default) or file-backed pool.
    pub backend: Backend,
    /// Whether `fence()` blocks until flushed ranges are durable
    /// (file-backed regions only; ignored on the heap).
    pub sync_policy: SyncPolicy,
    /// Track the guaranteed-on-media image of every pool region in a
    /// `.shadow` sidecar file, enabling
    /// [`shadow::powerloss_crash_file`](crate::shadow::powerloss_crash_file).
    /// Costs a mutex per write like strict mode — test configurations only.
    /// Ignored on the heap backend.
    pub shadow_pool: bool,
}

impl NvmOptions {
    /// Functional testing: no latency, no bandwidth ceiling, no shadow
    /// tracking.
    pub fn fast() -> Self {
        NvmOptions {
            latency: LatencyModel::off(),
            bandwidth: None,
            strict: false,
            tear_words: true,
            backend: Backend::Heap,
            sync_policy: SyncPolicy::Async,
            shadow_pool: false,
        }
    }

    /// Benchmarking: AEP latency profile and a shared AEP bandwidth
    /// ceiling, no shadow tracking.
    pub fn bench() -> Self {
        NvmOptions {
            latency: LatencyModel::aep(),
            bandwidth: Some(Arc::new(BandwidthLimiter::new(BandwidthModel::aep()))),
            strict: false,
            tear_words: true,
            backend: Backend::Heap,
            sync_policy: SyncPolicy::Async,
            shadow_pool: false,
        }
    }

    /// Crash-consistency testing: shadow media, no latency.
    pub fn strict() -> Self {
        NvmOptions {
            latency: LatencyModel::off(),
            bandwidth: None,
            strict: true,
            tear_words: true,
            backend: Backend::Heap,
            sync_policy: SyncPolicy::Async,
            shadow_pool: false,
        }
    }

    /// Durable storage: no latency model (the real file I/O *is* the
    /// latency), file-backed regions in `pool`.
    pub fn pooled(pool: Arc<PoolDir>) -> Self {
        NvmOptions {
            latency: LatencyModel::off(),
            bandwidth: None,
            strict: false,
            tear_words: true,
            backend: Backend::Pool(pool),
            sync_policy: SyncPolicy::Async,
            shadow_pool: false,
        }
    }

    /// Power-loss testing on the pool backend: shadow sidecars track the
    /// guaranteed-on-media image and fences block (`MS_SYNC`) so every
    /// acknowledged write is genuinely durable before the ack.
    pub fn pooled_shadow(pool: Arc<PoolDir>) -> Self {
        NvmOptions {
            sync_policy: SyncPolicy::Sync,
            shadow_pool: true,
            ..NvmOptions::pooled(pool)
        }
    }
}

impl Default for NvmOptions {
    fn default() -> Self {
        NvmOptions::fast()
    }
}

/// Strict-mode shadow state (ADR model).
struct StrictState {
    /// Last persisted image of the region.
    media: Vec<u8>,
    /// Lines whose working content differs from media and has not been
    /// flushed.
    dirty: HashSet<usize>,
    /// Lines flushed with `clwb` but not yet ordered by a fence. They reach
    /// media at the next fence (or maybe at a crash — in-flight).
    staged: HashSet<usize>,
}

/// A simulated persistent-memory region.
///
/// ```
/// use hdnh_nvm::{NvmOptions, NvmRegion};
///
/// let region = NvmRegion::new(4096, NvmOptions::strict());
/// region.write_bytes(100, b"hello");
/// region.persist(100, 5); // clwb + sfence: survives any crash
/// region.crash_with(|_| false); // power failure, all caches lost
/// let mut buf = [0u8; 5];
/// region.read_into(100, &mut buf);
/// assert_eq!(&buf, b"hello");
/// ```
pub struct NvmRegion {
    backing: Backing,
    len: usize,
    stats: NvmStats,
    latency: LatencyModel,
    bandwidth: Option<Arc<BandwidthLimiter>>,
    strict: Option<Mutex<StrictState>>,
    tear_words: bool,
    sync_policy: SyncPolicy,
    /// Guaranteed-on-media tracking for file-backed regions (power-loss
    /// simulation); `None` unless `NvmOptions::shadow_pool` was set.
    shadow: Option<Mutex<ShadowMedia>>,
}

/// The storage behind a region's word array.
enum Backing {
    /// Plain heap allocation (simulator).
    Heap(Box<[AtomicU64]>),
    /// A `MAP_SHARED` pool file. `pending` accumulates the flushed-but-not-
    /// fenced byte range; `fence()` msyncs it. Errors go to `pool` (sticky).
    File {
        map: FileMap,
        pool: Arc<PoolDir>,
        pending: Mutex<Option<(usize, usize)>>,
    },
}

impl NvmRegion {
    /// Allocates a zero-filled heap region of `len` bytes. Panics if the
    /// options name a pool backend — fallible construction is
    /// [`NvmRegion::alloc`]; this infallible form exists for the simulator
    /// paths that predate the backend split.
    pub fn new(len: usize, options: NvmOptions) -> Self {
        assert!(
            matches!(options.backend, Backend::Heap),
            "NvmRegion::new is heap-only; use NvmRegion::alloc for pool backends"
        );
        Self::alloc(len, &options, "seg").expect("heap region allocation is infallible")
    }

    /// Allocates a zero-filled region of `len` bytes on the backend the
    /// options name. `name_hint` picks the file name inside a pool
    /// (`"meta"` → `meta.dat`, anything else → a fresh `seg-<id>.dat`);
    /// ignored for heap regions.
    pub fn alloc(
        len: usize,
        options: &NvmOptions,
        name_hint: &str,
    ) -> Result<Self, NvmIoError> {
        let mut shadow = None;
        let backing = match &options.backend {
            Backend::Heap => {
                let n_words = len.div_ceil(8);
                let mut words = Vec::with_capacity(n_words);
                words.resize_with(n_words, || AtomicU64::new(0));
                Backing::Heap(words.into_boxed_slice())
            }
            Backend::Pool(pool) => {
                if options.strict {
                    return Err(NvmIoError::msg(
                        "alloc",
                        pool.path(),
                        "strict (shadow-media) mode requires the heap backend",
                    ));
                }
                let path = pool.new_region_path(name_hint)?;
                let map = FileMap::create(&path, len)?;
                if options.shadow_pool {
                    // A fresh region's durable image is all zeroes.
                    shadow = Some(Mutex::new(ShadowMedia::create(&path, &vec![0u8; len])?));
                }
                Backing::File {
                    map,
                    pool: Arc::clone(pool),
                    pending: Mutex::new(None),
                }
            }
        };
        let strict = options.strict.then(|| {
            Mutex::new(StrictState {
                media: vec![0u8; len],
                dirty: HashSet::new(),
                staged: HashSet::new(),
            })
        });
        Ok(NvmRegion {
            backing,
            len,
            stats: NvmStats::new(),
            latency: options.latency,
            bandwidth: options.bandwidth.clone(),
            strict,
            tear_words: options.tear_words,
            sync_policy: options.sync_policy,
            shadow,
        })
    }

    /// Maps an existing pool file as a region, preserving its contents.
    /// The options must name a pool backend (for fault routing); the
    /// region length is the file length.
    pub fn open_file(path: &Path, options: &NvmOptions) -> Result<Self, NvmIoError> {
        let pool = match &options.backend {
            Backend::Pool(p) => Arc::clone(p),
            Backend::Heap => {
                return Err(NvmIoError::msg(
                    "open",
                    path,
                    "open_file requires a pool backend in NvmOptions",
                ));
            }
        };
        if options.strict {
            return Err(NvmIoError::msg(
                "open",
                path,
                "strict (shadow-media) mode requires the heap backend",
            ));
        }
        let (map, len) = FileMap::open(path)?;
        let shadow = if options.shadow_pool {
            // A reopen is a fresh boot: whatever the file holds *is* what
            // media presented, so the sidecar baseline is reset to it.
            let image = std::fs::read(path).map_err(|e| NvmIoError::new("read", path, e))?;
            Some(Mutex::new(ShadowMedia::create(path, &image)?))
        } else {
            None
        };
        Ok(NvmRegion {
            backing: Backing::File {
                map,
                pool,
                pending: Mutex::new(None),
            },
            len,
            stats: NvmStats::new(),
            latency: options.latency,
            bandwidth: options.bandwidth.clone(),
            strict: None,
            tear_words: options.tear_words,
            sync_policy: options.sync_policy,
            shadow,
        })
    }

    /// The word array behind the region, whichever backend owns it.
    #[inline]
    fn words(&self) -> &[AtomicU64] {
        match &self.backing {
            Backing::Heap(words) => words,
            Backing::File { map, .. } => map.words(self.len.div_ceil(8)),
        }
    }

    /// The backing file's path, when file-backed.
    pub fn file_path(&self) -> Option<&Path> {
        match &self.backing {
            Backing::Heap(_) => None,
            Backing::File { map, .. } => Some(map.path()),
        }
    }

    /// Blocking full-strength sync (`msync(MS_SYNC)` + `fsync`) of a
    /// file-backed region; no-op on the heap. The clean-shutdown path.
    pub fn sync_to_disk(&self) -> Result<(), NvmIoError> {
        match &self.backing {
            Backing::Heap(_) => Ok(()),
            Backing::File { map, pending, .. } => {
                *pending.lock() = None;
                map.sync_all()?;
                if let Some(shadow) = &self.shadow {
                    // MS_SYNC + fsync covered the whole mapping: everything
                    // is on media now.
                    shadow.lock().commit_all(|off, buf| self.copy_out(off, buf))?;
                }
                Ok(())
            }
        }
    }

    /// Region length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for a zero-length region.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Media access counters for this region.
    #[inline]
    pub fn stats(&self) -> &NvmStats {
        &self.stats
    }

    /// The latency model in force.
    #[inline]
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    #[inline]
    fn check(&self, off: usize, len: usize) {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.len),
            "NVM access out of bounds: off={off} len={len} region={}",
            self.len
        );
    }

    #[inline]
    fn blocks_spanned(off: usize, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (off + len - 1) / NVM_BLOCK - off / NVM_BLOCK + 1
    }

    #[inline]
    fn lines_spanned(off: usize, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (off + len - 1) / CACHELINE - off / CACHELINE + 1
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Reads `out.len()` bytes starting at `off`. Charges read latency for
    /// every 256-byte media block the range spans (one block for any access
    /// inside a single bucket).
    pub fn read_into(&self, off: usize, out: &mut [u8]) {
        self.check(off, out.len());
        let blocks = Self::blocks_spanned(off, out.len());
        self.stats.on_read(out.len(), blocks);
        self.latency.charge_read(blocks);
        if let Some(bw) = &self.bandwidth {
            // Media moves whole blocks regardless of the request size.
            bw.charge_read(blocks * NVM_BLOCK);
        }
        self.copy_out(off, out);
        fault::corrupt_point("nvm.read", out);
    }

    /// Reads a `Pod` value at `off` (unaligned allowed).
    pub fn read_pod<T: Pod>(&self, off: usize) -> T {
        let mut out = MaybeUninit::<T>::uninit();
        // SAFETY: Pod guarantees any bit pattern is valid and the type is
        // plain bytes; we fully initialize all size_of::<T>() bytes below.
        unsafe {
            let dst =
                std::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut u8, size_of::<T>());
            self.read_into(off, dst);
            out.assume_init()
        }
    }

    /// Raw copy without stats/latency (recovery scans use
    /// [`read_into`](Self::read_into); this is for test assertions and the
    /// crash simulator itself).
    pub fn peek(&self, off: usize, out: &mut [u8]) {
        self.check(off, out.len());
        self.copy_out(off, out);
    }

    fn copy_out(&self, off: usize, out: &mut [u8]) {
        let mut i = 0;
        while i < out.len() {
            let abs = off + i;
            let w = abs / 8;
            let shift = abs % 8;
            let n = (8 - shift).min(out.len() - i);
            let word = self.words()[w].load(Ordering::Relaxed).to_le_bytes();
            out[i..i + n].copy_from_slice(&word[shift..shift + n]);
            i += n;
        }
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Writes `data` at `off`. Sub-word edges merge with a CAS loop so
    /// concurrent writers of adjacent byte ranges never interfere.
    pub fn write_bytes(&self, off: usize, data: &[u8]) {
        fault::point("nvm.write");
        self.check(off, data.len());
        let lines = Self::lines_spanned(off, data.len());
        self.stats.on_write(data.len(), lines);
        self.latency.charge_write(lines);
        if let Some(bw) = &self.bandwidth {
            // Write bandwidth drains at cacheline granularity.
            bw.charge_write(lines * CACHELINE);
        }
        self.copy_in(off, data);
        self.mark_dirty(off, data.len());
    }

    /// Writes a `Pod` value at `off` (unaligned allowed).
    pub fn write_pod<T: Pod>(&self, off: usize, v: &T) {
        // SAFETY: Pod types are plain bytes.
        let src =
            unsafe { std::slice::from_raw_parts(v as *const T as *const u8, size_of::<T>()) };
        self.write_bytes(off, src);
    }

    fn copy_in(&self, off: usize, data: &[u8]) {
        let mut i = 0;
        while i < data.len() {
            let abs = off + i;
            let w = abs / 8;
            let shift = abs % 8;
            let n = (8 - shift).min(data.len() - i);
            if n == 8 {
                let v = u64::from_le_bytes(data[i..i + 8].try_into().unwrap());
                self.words()[w].store(v, Ordering::Relaxed);
            } else {
                let mut mask = 0u64;
                let mut val = 0u64;
                for j in 0..n {
                    mask |= 0xFFu64 << ((shift + j) * 8);
                    val |= (data[i + j] as u64) << ((shift + j) * 8);
                }
                // Merge the bytes without disturbing neighbours.
                let _ = self.words()[w]
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
                        Some((old & !mask) | val)
                    });
            }
            i += n;
        }
    }

    fn mark_dirty(&self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        if let Some(strict) = &self.strict {
            let mut st = strict.lock();
            for line in (off / CACHELINE)..=((off + len - 1) / CACHELINE) {
                // A line that was staged but is written again becomes dirty
                // again: the new store is not covered by the earlier clwb.
                st.staged.remove(&line);
                st.dirty.insert(line);
            }
        }
        if let Some(shadow) = &self.shadow {
            shadow.lock().mark_dirty(off, len);
        }
    }

    // ------------------------------------------------------------------
    // 8-byte atomics (the failure-atomicity unit of persistent memory)
    // ------------------------------------------------------------------

    #[inline]
    fn word_at(&self, off: usize) -> &AtomicU64 {
        self.check(off, 8);
        assert_eq!(off % 8, 0, "atomic access must be 8-byte aligned: {off}");
        &self.words()[off / 8]
    }

    /// Atomic 64-bit load. Charged as a one-block read.
    #[inline]
    pub fn atomic_load_u64(&self, off: usize, order: Ordering) -> u64 {
        self.stats.on_read(8, 1);
        self.latency.charge_read(1);
        fault::corrupt_word("nvm.load", self.word_at(off).load(order))
    }

    /// Atomic 64-bit load with **no** latency/stat charge. Models a load
    /// that is expected to hit the CPU cache (e.g. re-reading a header word
    /// the thread just wrote). Use sparingly and only with a justification
    /// at the call site.
    #[inline]
    pub fn atomic_load_u64_cached(&self, off: usize, order: Ordering) -> u64 {
        self.word_at(off).load(order)
    }

    /// Atomic 64-bit store — the paper's "atomic write" for bitmap commits.
    #[inline]
    pub fn atomic_store_u64(&self, off: usize, val: u64, order: Ordering) {
        fault::point("nvm.atomic_store");
        self.stats.on_write(8, 1);
        self.latency.charge_write(1);
        self.word_at(off).store(val, order);
        self.mark_dirty(off, 8);
    }

    /// Atomic compare-exchange on a 64-bit word.
    #[inline]
    pub fn atomic_cas_u64(
        &self,
        off: usize,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        fault::point("nvm.cas");
        self.stats.on_write(8, 1);
        self.latency.charge_write(1);
        let r = self.word_at(off).compare_exchange(current, new, success, failure);
        if r.is_ok() {
            self.mark_dirty(off, 8);
        }
        r
    }

    /// Atomic fetch-or on a 64-bit word (set bitmap bits).
    #[inline]
    pub fn atomic_fetch_or_u64(&self, off: usize, bits: u64, order: Ordering) -> u64 {
        fault::point("nvm.fetch_or");
        self.stats.on_write(8, 1);
        self.latency.charge_write(1);
        let r = self.word_at(off).fetch_or(bits, order);
        self.mark_dirty(off, 8);
        r
    }

    /// Atomic fetch-and on a 64-bit word (clear bitmap bits).
    #[inline]
    pub fn atomic_fetch_and_u64(&self, off: usize, bits: u64, order: Ordering) -> u64 {
        fault::point("nvm.fetch_and");
        self.stats.on_write(8, 1);
        self.latency.charge_write(1);
        let r = self.word_at(off).fetch_and(bits, order);
        self.mark_dirty(off, 8);
        r
    }

    /// Atomic xor on a 64-bit word (flip old+new bitmap bits in one shot —
    /// the paper's figure-10 update commit).
    #[inline]
    pub fn atomic_fetch_xor_u64(&self, off: usize, bits: u64, order: Ordering) -> u64 {
        fault::point("nvm.fetch_xor");
        self.stats.on_write(8, 1);
        self.latency.charge_write(1);
        let r = self.word_at(off).fetch_xor(bits, order);
        self.mark_dirty(off, 8);
        r
    }

    // ------------------------------------------------------------------
    // Persistence: clwb / sfence
    // ------------------------------------------------------------------

    /// `clwb` every cacheline covering `[off, off+len)`. Lines become
    /// *staged*: they reach media at the next [`fence`](Self::fence).
    /// On a file-backed region the line range is accumulated instead,
    /// and the fence `msync`s it.
    pub fn flush(&self, off: usize, len: usize) {
        fault::point("nvm.flush");
        self.check(off, len);
        let lines = Self::lines_spanned(off, len);
        self.stats.on_flush(lines);
        self.latency.charge_flush(lines);
        if let Some(strict) = &self.strict {
            if len == 0 {
                return;
            }
            let mut st = strict.lock();
            for line in (off / CACHELINE)..=((off + len - 1) / CACHELINE) {
                if st.dirty.remove(&line) {
                    st.staged.insert(line);
                }
            }
        }
        if len == 0 {
            return;
        }
        if let Some(shadow) = &self.shadow {
            shadow.lock().on_flush(off, len);
        }
        if let Backing::File { pending, .. } = &self.backing {
            // Accumulate at cacheline granularity (msync itself rounds to
            // pages); one merged range keeps the hot path to a min/max.
            let lo = (off / CACHELINE) * CACHELINE;
            let hi = off + len;
            let mut p = pending.lock();
            *p = Some(match *p {
                None => (lo, hi),
                Some((a, b)) => (a.min(lo), b.max(hi)),
            });
        }
    }

    /// `sfence`: commits every staged line to the media image. On a
    /// file-backed region, `msync`s the accumulated flush range — under
    /// [`SyncPolicy::Async`] that only *schedules* write-back (fast, not
    /// power-loss safe); under [`SyncPolicy::Sync`] the call blocks until
    /// the range is durable, and shadow tracking (when enabled) marks the
    /// covered lines as guaranteed-on-media. A failure is recorded as a
    /// sticky pool fault (surfaced before the next ack) rather than
    /// panicking mid-write.
    pub fn fence(&self) {
        fault::point("nvm.fence");
        self.stats.on_fence();
        self.latency.charge_fence();
        if let Some(strict) = &self.strict {
            let mut st = strict.lock();
            let staged: Vec<usize> = st.staged.drain().collect();
            for line in staged {
                self.commit_line_to_media(&mut st.media, line);
            }
        }
        if let Backing::File { map, pool, pending } = &self.backing {
            let range = pending.lock().take();
            if let Some((lo, hi)) = range {
                let blocking = self.sync_policy == SyncPolicy::Sync;
                match map.sync_range(lo, hi - lo, blocking) {
                    Ok(()) if blocking => {
                        if let Some(shadow) = &self.shadow {
                            // The msync returned: those lines are on media.
                            // (Async fences commit nothing — MS_ASYNC gives
                            // no such guarantee, and the shadow model keeps
                            // them at risk on purpose.)
                            let r = shadow
                                .lock()
                                .commit_staged(|off, buf| self.copy_out(off, buf));
                            if let Err(e) = r {
                                pool.record_fault(e);
                            }
                        }
                    }
                    Ok(()) => {}
                    Err(e) => pool.record_fault(e),
                }
            }
        }
    }

    /// Convenience: flush + fence.
    pub fn persist(&self, off: usize, len: usize) {
        self.flush(off, len);
        self.fence();
    }

    fn commit_line_to_media(&self, media: &mut [u8], line: usize) {
        let start = line * CACHELINE;
        let end = (start + CACHELINE).min(self.len);
        let mut buf = [0u8; CACHELINE];
        self.copy_out(start, &mut buf[..end - start]);
        media[start..end].copy_from_slice(&buf[..end - start]);
    }

    // ------------------------------------------------------------------
    // Media-corruption simulation
    // ------------------------------------------------------------------

    /// XORs `mask` into the bytes at `[off, off+mask.len())`, modelling
    /// in-place media decay (a stuck cell, radiation upset, firmware bug).
    /// The damage lands on the *persisted* image too in strict mode, so it
    /// survives crashes and is visible to recovery scans — unlike
    /// [`fault::corrupt_point`] plans, which falsify a single read in
    /// flight. Bytes whose mask is zero are untouched. Uncharged (the
    /// decay is not an access). Test/diagnostic API.
    pub fn corrupt(&self, off: usize, mask: &[u8]) {
        self.check(off, mask.len());
        let mut cur = vec![0u8; mask.len()];
        self.copy_out(off, &mut cur);
        for (b, m) in cur.iter_mut().zip(mask) {
            *b ^= m;
        }
        self.copy_in(off, &cur);
        if let Some(strict) = &self.strict {
            let mut st = strict.lock();
            for (i, m) in mask.iter().enumerate() {
                st.media[off + i] ^= m;
            }
        }
        if let Some(shadow) = &self.shadow {
            // Decay hits the persisted image too (same as strict mode).
            let _ = shadow.lock().corrupt(off, mask);
        }
    }

    // ------------------------------------------------------------------
    // Crash simulation (strict mode only)
    // ------------------------------------------------------------------

    /// Number of lines that are dirty or staged (i.e. would be at risk in a
    /// crash). Zero after a well-placed `persist` under a blocking sync
    /// policy. Requires strict mode or pool shadow tracking.
    pub fn at_risk_lines(&self) -> usize {
        if let Some(strict) = &self.strict {
            let st = strict.lock();
            return st.dirty.len() + st.staged.len();
        }
        let shadow = self
            .shadow
            .as_ref()
            .expect("at_risk_lines requires strict mode or shadow tracking");
        shadow.lock().at_risk()
    }

    /// Ack-without-persist lint: asserts that every byte of
    /// `[off, off+len)` has actually reached the media image — i.e. no
    /// covering cacheline is still dirty (never flushed) or merely staged
    /// (flushed but not yet fenced). Called where an operation is about to
    /// acknowledge durability for those bytes; catches a missing `fence`
    /// after a `flush` (or a missing `flush` altogether) deterministically
    /// instead of relying on a randomized crash to land in the window.
    ///
    /// Debug builds only, and only when [`fault::set_lint_persists`] is
    /// enabled: the check assumes a single mutating thread (a concurrent
    /// writer sharing a cacheline would re-dirty it legitimately).
    /// No-op outside strict mode and pool shadow tracking. (On a shadow
    /// pool under [`SyncPolicy::Async`] every ack trips the lint — by
    /// design: async fences are not power-loss durable.)
    #[inline]
    pub fn assert_persisted(&self, off: usize, len: usize) {
        #[cfg(debug_assertions)]
        {
            if len == 0 || !fault::lint_persists() {
                return;
            }
            if let Some(strict) = &self.strict {
                let st = strict.lock();
                for line in (off / CACHELINE)..=((off + len - 1) / CACHELINE) {
                    assert!(
                        !st.dirty.contains(&line),
                        "ack-without-persist: bytes {off}..{} acknowledged durable but \
                         line {line} is dirty (missing flush)",
                        off + len
                    );
                    assert!(
                        !st.staged.contains(&line),
                        "ack-without-persist: bytes {off}..{} acknowledged durable but \
                         line {line} is staged (flush without fence)",
                        off + len
                    );
                }
            }
            if let Some(shadow) = &self.shadow {
                let sh = shadow.lock();
                for line in (off / CACHELINE)..=((off + len - 1) / CACHELINE) {
                    assert!(
                        !sh.is_dirty(line),
                        "ack-without-persist: bytes {off}..{} acknowledged durable but \
                         line {line} is dirty (missing flush)",
                        off + len
                    );
                    assert!(
                        !sh.is_staged(line),
                        "ack-without-persist: bytes {off}..{} acknowledged durable but \
                         line {line} is staged (flush without blocking fence)",
                        off + len
                    );
                }
            }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (off, len);
        }
    }

    /// Simulates a power failure and reboot.
    ///
    /// Every line that was **staged** (flushed, fence pending) or **dirty**
    /// (never flushed) independently either reaches media or is lost,
    /// decided by `rng` — modelling in-flight stores and arbitrary cache
    /// eviction. With `tear_words`, a surviving-or-lost decision is made per
    /// 8-byte word inside each such line (AEP's failure-atomicity unit),
    /// so partially-persisted lines are observable.
    ///
    /// Afterwards the working image equals the media image and all tracking
    /// is cleared, exactly like a fresh boot mapping the same pool. Returns
    /// the number of words dropped.
    ///
    /// Must not race with other accessors (callers quiesce their threads
    /// first, as a real crash test harness would).
    pub fn crash(&self, rng: &mut XorShift64Star) -> usize {
        let strict = self.strict.as_ref().expect("crash requires strict mode");
        let mut st = strict.lock();
        let mut dropped = 0usize;
        let at_risk: Vec<usize> = st.dirty.iter().chain(st.staged.iter()).copied().collect();
        for line in at_risk {
            let start = line * CACHELINE;
            let end = (start + CACHELINE).min(self.len);
            if self.tear_words {
                let mut word = [0u8; 8];
                for woff in (start..end).step_by(8) {
                    let n = (end - woff).min(8);
                    if rng.next_u64() & 1 == 0 {
                        self.copy_out(woff, &mut word[..n]);
                        st.media[woff..woff + n].copy_from_slice(&word[..n]);
                    } else {
                        dropped += 1;
                    }
                }
            } else if rng.next_u64() & 1 == 0 {
                self.commit_line_to_media(&mut st.media, line);
            } else {
                dropped += 1;
            }
        }
        st.dirty.clear();
        st.staged.clear();
        // Reboot: working image = media image.
        let media = std::mem::take(&mut st.media);
        self.copy_in(0, &media);
        st.media = media;
        dropped
    }

    /// Deterministic crash: `survive(line)` decides per line whether an
    /// at-risk line reaches media. Used by tests that target one specific
    /// crash point.
    pub fn crash_with(&self, mut survive: impl FnMut(usize) -> bool) {
        let strict = self.strict.as_ref().expect("crash_with requires strict mode");
        let mut st = strict.lock();
        let at_risk: Vec<usize> = st.dirty.iter().chain(st.staged.iter()).copied().collect();
        for line in at_risk {
            if survive(line) {
                self.commit_line_to_media(&mut st.media, line);
            }
        }
        st.dirty.clear();
        st.staged.clear();
        let media = std::mem::take(&mut st.media);
        self.copy_in(0, &media);
        st.media = media;
    }
}

impl std::fmt::Debug for NvmRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvmRegion")
            .field("len", &self.len)
            .field("strict", &self.strict.is_some())
            .field("file", &self.file_path())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(len: usize) -> NvmRegion {
        NvmRegion::new(len, NvmOptions::fast())
    }

    #[test]
    fn new_region_is_zeroed() {
        let r = region(1024);
        let mut buf = [1u8; 1024];
        r.read_into(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_read_roundtrip_aligned() {
        let r = region(256);
        let data: Vec<u8> = (0..64).collect();
        r.write_bytes(64, &data);
        let mut out = vec![0u8; 64];
        r.read_into(64, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn write_read_roundtrip_unaligned() {
        let r = region(256);
        let data: Vec<u8> = (10..41).collect(); // 31 bytes, like a record
        r.write_bytes(13, &data);
        let mut out = vec![0u8; 31];
        r.read_into(13, &mut out);
        assert_eq!(out, data);
        // Neighbouring bytes untouched.
        let mut edge = [0u8; 1];
        r.read_into(12, &mut edge);
        assert_eq!(edge[0], 0);
        r.read_into(44, &mut edge);
        assert_eq!(edge[0], 0);
    }

    #[test]
    fn pod_roundtrip() {
        let r = region(128);
        r.write_pod(3, &0xDEAD_BEEFu64);
        assert_eq!(r.read_pod::<u64>(3), 0xDEAD_BEEF);
        r.write_pod(40, &[7u8; 31]);
        assert_eq!(r.read_pod::<[u8; 31]>(40), [7u8; 31]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let r = region(64);
        let mut buf = [0u8; 8];
        r.read_into(60, &mut buf);
    }

    #[test]
    #[should_panic(expected = "8-byte aligned")]
    fn misaligned_atomic_panics() {
        let r = region(64);
        r.atomic_load_u64(3, Ordering::Relaxed);
    }

    #[test]
    fn atomics_work() {
        let r = region(64);
        r.atomic_store_u64(8, 5, Ordering::Release);
        assert_eq!(r.atomic_load_u64(8, Ordering::Acquire), 5);
        assert_eq!(
            r.atomic_cas_u64(8, 5, 9, Ordering::AcqRel, Ordering::Acquire),
            Ok(5)
        );
        assert_eq!(
            r.atomic_cas_u64(8, 5, 11, Ordering::AcqRel, Ordering::Acquire),
            Err(9)
        );
        r.atomic_fetch_or_u64(8, 0b100, Ordering::AcqRel);
        assert_eq!(r.atomic_load_u64(8, Ordering::Acquire), 13);
        r.atomic_fetch_and_u64(8, !0b1000, Ordering::AcqRel);
        assert_eq!(r.atomic_load_u64(8, Ordering::Acquire), 5);
        r.atomic_fetch_xor_u64(8, 0b110, Ordering::AcqRel);
        assert_eq!(r.atomic_load_u64(8, Ordering::Acquire), 3);
    }

    #[test]
    fn stats_count_blocks_and_lines() {
        let r = region(4096);
        let before = r.stats().snapshot();
        let mut buf = [0u8; 31];
        r.read_into(0, &mut buf); // 1 block
        r.read_into(250, &mut buf); // spans blocks 0 and 1
        let d = r.stats().snapshot().since(&before);
        assert_eq!(d.reads, 2);
        assert_eq!(d.read_blocks, 3);

        let before = r.stats().snapshot();
        r.write_bytes(60, &[1u8; 10]); // spans 2 cachelines
        let d = r.stats().snapshot().since(&before);
        assert_eq!(d.write_lines, 2);

        let before = r.stats().snapshot();
        r.flush(0, 256); // 4 lines
        r.fence();
        let d = r.stats().snapshot().since(&before);
        assert_eq!(d.flushes, 4);
        assert_eq!(d.fences, 1);
    }

    #[test]
    fn concurrent_adjacent_byte_writes_do_not_clobber() {
        use std::sync::Arc;
        let r = Arc::new(region(64));
        // Two threads write interleaved odd/even bytes of the same words.
        let r1 = Arc::clone(&r);
        let t1 = std::thread::spawn(move || {
            for _ in 0..1000 {
                for i in (0..64).step_by(2) {
                    r1.write_bytes(i, &[0xAA]);
                }
            }
        });
        let r2 = Arc::clone(&r);
        let t2 = std::thread::spawn(move || {
            for _ in 0..1000 {
                for i in (1..64).step_by(2) {
                    r2.write_bytes(i, &[0xBB]);
                }
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let mut buf = [0u8; 64];
        r.peek(0, &mut buf);
        for (i, &b) in buf.iter().enumerate() {
            assert_eq!(b, if i % 2 == 0 { 0xAA } else { 0xBB }, "byte {i}");
        }
    }

    #[test]
    fn zero_length_region_is_inert() {
        let r = NvmRegion::new(0, NvmOptions::fast());
        assert!(r.is_empty());
        let mut buf = [];
        r.read_into(0, &mut buf); // len 0 at off 0 is in bounds
        r.write_bytes(0, &[]);
        r.flush(0, 0);
        r.fence();
    }

    #[test]
    fn one_byte_region_roundtrips() {
        let r = NvmRegion::new(1, NvmOptions::fast());
        r.write_bytes(0, &[0xAB]);
        let mut b = [0u8];
        r.read_into(0, &mut b);
        assert_eq!(b[0], 0xAB);
    }

    #[test]
    fn peek_is_uncharged() {
        let r = region(256);
        r.write_bytes(0, &[1; 64]);
        let before = r.stats().snapshot();
        let mut buf = [0u8; 64];
        r.peek(0, &mut buf);
        let d = r.stats().snapshot().since(&before);
        assert_eq!(d.reads, 0);
        assert_eq!(d.read_blocks, 0);
    }

    #[test]
    fn write_crossing_line_boundary_counts_two_lines() {
        let r = region(256);
        let before = r.stats().snapshot();
        r.write_bytes(63, &[9, 9]); // bytes 63 and 64: lines 0 and 1
        let d = r.stats().snapshot().since(&before);
        assert_eq!(d.write_lines, 2);
    }

    #[test]
    fn fence_with_nothing_staged_is_harmless() {
        let r = strict_region(256);
        r.fence();
        assert_eq!(r.at_risk_lines(), 0);
        r.write_bytes(0, &[1]);
        r.fence(); // dirty but never flushed: still at risk
        assert_eq!(r.at_risk_lines(), 1);
    }

    #[test]
    fn crash_on_pristine_region_keeps_zeroes() {
        let r = strict_region(256);
        let mut rng = XorShift64Star::new(5);
        assert_eq!(r.crash(&mut rng), 0);
        let mut buf = [1u8; 256];
        r.peek(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    // ---------------- strict mode ----------------

    fn strict_region(len: usize) -> NvmRegion {
        NvmRegion::new(len, NvmOptions::strict())
    }

    #[test]
    fn unflushed_write_is_lost_when_unlucky() {
        let r = strict_region(256);
        r.write_bytes(0, &[0xFF; 8]);
        // Force "lost" for every line.
        r.crash_with(|_| false);
        let mut buf = [0u8; 8];
        r.peek(0, &mut buf);
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn unflushed_write_may_survive_eviction() {
        let r = strict_region(256);
        r.write_bytes(0, &[0xFF; 8]);
        r.crash_with(|_| true);
        let mut buf = [0u8; 8];
        r.peek(0, &mut buf);
        assert_eq!(buf, [0xFF; 8]);
    }

    #[test]
    fn persisted_write_survives_any_crash() {
        let r = strict_region(256);
        r.write_bytes(0, &[0xAB; 16]);
        r.persist(0, 16);
        assert_eq!(r.at_risk_lines(), 0);
        r.crash_with(|_| false);
        let mut buf = [0u8; 16];
        r.peek(0, &mut buf);
        assert_eq!(buf, [0xAB; 16]);
    }

    #[test]
    fn flush_without_fence_is_still_at_risk() {
        let r = strict_region(256);
        r.write_bytes(0, &[0xCD; 8]);
        r.flush(0, 8);
        assert_eq!(r.at_risk_lines(), 1);
        r.crash_with(|_| false);
        let mut buf = [0u8; 8];
        r.peek(0, &mut buf);
        assert_eq!(buf, [0u8; 8], "staged line must be allowed to be lost");
    }

    #[test]
    fn rewrite_after_flush_is_dirty_again() {
        let r = strict_region(256);
        r.write_bytes(0, &[1; 8]);
        r.flush(0, 8);
        r.write_bytes(0, &[2; 8]); // staged -> dirty again
        r.fence(); // nothing staged: the second write is NOT persisted
        r.crash_with(|_| false);
        let mut buf = [0u8; 8];
        r.peek(0, &mut buf);
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn randomized_crash_keeps_subset() {
        let r = strict_region(4096);
        for line in 0..64 {
            r.write_bytes(line * 64, &[line as u8 + 1; 64]);
        }
        // Persist the first 32 lines only.
        r.persist(0, 32 * 64);
        let mut rng = XorShift64Star::new(42);
        r.crash(&mut rng);
        let mut buf = [0u8; 64];
        for line in 0..32 {
            r.peek(line * 64, &mut buf);
            assert_eq!(buf, [line as u8 + 1; 64], "persisted line {line}");
        }
        // The unpersisted half: each 8-byte word is either all-old (0) or
        // all-new; count survivors at word granularity.
        let mut surviving_words = 0;
        let mut lost_words = 0;
        for line in 32..64 {
            r.peek(line * 64, &mut buf);
            for word in buf.chunks(8) {
                if word.iter().all(|&b| b == line as u8 + 1) {
                    surviving_words += 1;
                } else {
                    assert!(word.iter().all(|&b| b == 0), "torn inside a word");
                    lost_words += 1;
                }
            }
        }
        // 256 words at ~50% survival: both extremes are astronomically
        // unlikely.
        assert!(surviving_words > 0 && lost_words > 0, "{surviving_words}/{lost_words}");
    }

    #[test]
    fn torn_line_possible_at_word_granularity() {
        let r = strict_region(256);
        // One full line, never flushed.
        r.write_bytes(0, &[0xEE; 64]);
        let mut torn_seen = false;
        for seed in 0..200 {
            let r = strict_region(256);
            r.write_bytes(0, &[0xEE; 64]);
            let mut rng = XorShift64Star::new(seed);
            r.crash(&mut rng);
            let mut buf = [0u8; 64];
            r.peek(0, &mut buf);
            let words: Vec<bool> = buf.chunks(8).map(|w| w.iter().all(|&b| b == 0xEE)).collect();
            if words.iter().any(|&x| x) && words.iter().any(|&x| !x) {
                torn_seen = true;
                break;
            }
        }
        assert!(torn_seen, "expected at least one torn line in 200 crashes");
        let _ = r;
    }

    #[test]
    fn crash_resets_tracking() {
        let r = strict_region(256);
        r.write_bytes(0, &[1; 64]);
        let mut rng = XorShift64Star::new(7);
        r.crash(&mut rng);
        assert_eq!(r.at_risk_lines(), 0);
    }

    #[test]
    fn atomic_store_participates_in_persistence() {
        let r = strict_region(256);
        r.atomic_store_u64(0, 77, Ordering::Release);
        r.persist(0, 8);
        r.crash_with(|_| false);
        assert_eq!(r.atomic_load_u64(0, Ordering::Acquire), 77);
    }

    // ---------------- media corruption ----------------

    #[test]
    fn corrupt_flips_exactly_masked_bits() {
        let r = region(256);
        r.write_bytes(10, &[0xF0; 4]);
        r.corrupt(10, &[0x0F, 0x00, 0xFF, 0x00]);
        let mut buf = [0u8; 4];
        r.peek(10, &mut buf);
        assert_eq!(buf, [0xFF, 0xF0, 0x0F, 0xF0]);
        // Applying the same mask again undoes the damage (XOR).
        r.corrupt(10, &[0x0F, 0x00, 0xFF, 0x00]);
        r.peek(10, &mut buf);
        assert_eq!(buf, [0xF0; 4]);
    }

    #[test]
    fn corrupt_survives_crash_in_strict_mode() {
        let r = strict_region(256);
        r.write_bytes(0, &[0xAA; 8]);
        r.persist(0, 8);
        r.corrupt(0, &[0x01]);
        r.crash_with(|_| false);
        let mut buf = [0u8; 8];
        r.peek(0, &mut buf);
        assert_eq!(buf[0], 0xAB, "decay must land on the media image");
        assert_eq!(buf[1], 0xAA);
    }

    #[test]
    fn corrupt_is_uncharged() {
        let r = region(256);
        let before = r.stats().snapshot();
        r.corrupt(0, &[0xFF; 16]);
        let d = r.stats().snapshot().since(&before);
        assert_eq!(d.reads + d.writes, 0);
    }

    #[test]
    fn injected_read_corruption_falsifies_one_read_only() {
        let _g = LINT_LOCK.lock(); // fault registry is process-global
        let r = region(256);
        r.write_bytes(0, &[0x55; 32]);
        crate::fault::arm_corruption(crate::fault::CorruptionPlan {
            site: "nvm.read".into(),
            hit: 1,
            kind: crate::fault::CorruptionKind::BitFlip,
            mask: 0x80,
            seed: 3,
        });
        let mut first = [0u8; 32];
        r.read_into(0, &mut first);
        let mut second = [0u8; 32];
        r.read_into(0, &mut second);
        let _ = crate::fault::disarm_corruption();
        assert_ne!(first, [0x55; 32], "first read must come back damaged");
        assert_eq!(second, [0x55; 32], "media itself is intact");
    }

    // ---------------- ack-without-persist lint ----------------

    /// Serializes lint tests: the lint gate is process-global.
    static LINT_LOCK: Mutex<()> = Mutex::new(());

    fn with_lint(f: impl FnOnce()) {
        let _g = LINT_LOCK.lock();
        let prev = crate::fault::set_lint_persists(true);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        crate::fault::set_lint_persists(prev);
        if let Err(e) = r {
            std::panic::resume_unwind(e);
        }
    }

    #[test]
    fn lint_accepts_persisted_bytes() {
        with_lint(|| {
            let r = strict_region(256);
            r.write_bytes(0, &[1; 16]);
            r.persist(0, 16);
            r.assert_persisted(0, 16);
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    fn lint_catches_missing_flush() {
        with_lint(|| {
            let r = strict_region(256);
            r.write_bytes(0, &[1; 16]);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                r.assert_persisted(0, 16)
            }))
            .expect_err("dirty line must trip the lint");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("missing flush"), "{msg}");
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    fn lint_catches_flush_without_fence() {
        with_lint(|| {
            let r = strict_region(256);
            r.write_bytes(0, &[1; 16]);
            r.flush(0, 16);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                r.assert_persisted(0, 16)
            }))
            .expect_err("staged line must trip the lint");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("flush without fence"), "{msg}");
        });
    }

    #[test]
    fn lint_disabled_is_silent() {
        let _g = LINT_LOCK.lock();
        let prev = crate::fault::set_lint_persists(false);
        let r = strict_region(256);
        r.write_bytes(0, &[1; 16]);
        r.assert_persisted(0, 16); // gate off: no panic
        crate::fault::set_lint_persists(prev);
    }

    // ---------------- file backend ----------------

    #[cfg(unix)]
    mod file_backend {
        use super::*;
        use std::path::PathBuf;

        fn pool_dir(name: &str) -> (PathBuf, NvmOptions) {
            let d = std::env::temp_dir()
                .join(format!("hdnh_region_file_{}_{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            let pool = Arc::new(PoolDir::create(&d).unwrap());
            (d, NvmOptions::pooled(pool))
        }

        #[test]
        fn pooled_region_roundtrips_and_reopens() {
            let (d, opts) = pool_dir("roundtrip");
            let r = NvmRegion::alloc(512, &opts, "seg").unwrap();
            let path = r.file_path().unwrap().to_path_buf();
            r.write_bytes(13, &[0xAB; 31]);
            r.persist(13, 31);
            r.atomic_store_u64(64, 0x1234, Ordering::Release);
            r.sync_to_disk().unwrap();
            drop(r);

            let r2 = NvmRegion::open_file(&path, &opts).unwrap();
            assert_eq!(r2.len(), 512);
            let mut buf = [0u8; 31];
            r2.read_into(13, &mut buf);
            assert_eq!(buf, [0xAB; 31]);
            assert_eq!(r2.atomic_load_u64(64, Ordering::Acquire), 0x1234);
            drop(r2);
            std::fs::remove_dir_all(&d).unwrap();
        }

        #[test]
        fn unsynced_pooled_write_survives_drop() {
            // Process-death durability: no persist/sync at all, the bytes
            // still come back (page cache keeps them).
            let (d, opts) = pool_dir("unsynced");
            let r = NvmRegion::alloc(256, &opts, "seg").unwrap();
            let path = r.file_path().unwrap().to_path_buf();
            r.write_bytes(0, &[0x77; 64]);
            drop(r);
            let r2 = NvmRegion::open_file(&path, &opts).unwrap();
            let mut buf = [0u8; 64];
            r2.peek(0, &mut buf);
            assert_eq!(buf, [0x77; 64]);
            drop(r2);
            std::fs::remove_dir_all(&d).unwrap();
        }

        #[test]
        fn strict_plus_pool_is_rejected() {
            let (d, opts) = pool_dir("strict");
            let mut opts = opts;
            opts.strict = true;
            let e = NvmRegion::alloc(256, &opts, "seg").unwrap_err();
            assert!(e.msg.contains("strict"), "{e}");
            std::fs::remove_dir_all(&d).unwrap();
        }

        #[test]
        fn heap_constructor_rejects_pool_backend() {
            let (d, opts) = pool_dir("newpanics");
            let r = std::panic::catch_unwind(|| NvmRegion::new(256, opts.clone()));
            assert!(r.is_err());
            std::fs::remove_dir_all(&d).unwrap();
        }

        #[test]
        fn flush_fence_msyncs_without_fault() {
            let (d, opts) = pool_dir("fence");
            let r = NvmRegion::alloc(4096, &opts, "seg").unwrap();
            r.write_bytes(100, &[1; 200]);
            r.flush(100, 200);
            r.write_bytes(3000, &[2; 50]);
            r.flush(3000, 50);
            r.fence();
            let pool = opts.backend.pool().unwrap();
            assert!(!pool.has_fault());
            drop(r);
            std::fs::remove_dir_all(&d).unwrap();
        }

        #[test]
        fn heap_region_has_no_file_path_and_syncs_trivially() {
            let r = region(64);
            assert!(r.file_path().is_none());
            r.sync_to_disk().unwrap();
        }
    }
}
