//! Deterministic crash-point injection.
//!
//! Every durability-relevant step in the system is annotated with a named
//! *crash site* via [`point`]. When injection is disabled (the default and
//! the benchmark configuration) a site costs one relaxed atomic load.
//! When enabled, the registry either *records* how often each site is hit
//! by a workload, or is *armed* with a [`FaultPlan`]: at the k-th hit of
//! the planned site the calling thread unwinds with an [`InjectedCrash`]
//! panic payload, simulating the CPU dying at exactly that instruction.
//! The harness catches the unwind, tears unflushed cachelines with
//! [`NvmRegion::crash`](crate::NvmRegion::crash), and runs recovery.
//!
//! The registry is process-global (crash sites are free functions deep in
//! the write paths), so explorers and tests that use it must not run
//! concurrently with each other; each driver serializes its own runs.
//!
//! The same module hosts the strict-mode *ack-without-persist lint* gate:
//! when [`set_lint_persists`] is on, [`NvmRegion::assert_persisted`]
//! (called where an operation acknowledges durability) fails fast if any
//! acknowledged byte still sits on a dirty or merely-staged cacheline.
//! The lint assumes a single mutating thread (concurrent writers sharing
//! a cacheline would trip it spuriously), so drivers enable it only for
//! single-threaded phases.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

/// Panic payload thrown by [`point`] when an armed plan triggers.
#[derive(Debug, Clone)]
pub struct InjectedCrash {
    /// The crash site that fired.
    pub site: &'static str,
    /// Which hit of that site fired (1-based).
    pub hit: u64,
}

/// "Crash at the `hit`-th time site `site` is reached" (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Name of the crash site to trigger at.
    pub site: String,
    /// 1-based hit count at which to crash.
    pub hit: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Count hits per site without crashing.
    Record,
    /// Crash at the planned (site, hit).
    Armed,
}

struct FaultState {
    mode: Mode,
    plan: Option<FaultPlan>,
    counts: BTreeMap<&'static str, u64>,
    fired: Option<InjectedCrash>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static LINT_PERSISTS: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<FaultState>> = Mutex::new(None);

/// Declares a crash site. One relaxed load when injection is disabled.
#[inline]
pub fn point(site: &'static str) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    point_slow(site);
}

#[cold]
fn point_slow(site: &'static str) {
    let crash = {
        let mut guard = STATE.lock();
        let Some(st) = guard.as_mut() else {
            return;
        };
        let n = st.counts.entry(site).or_insert(0);
        *n += 1;
        let n = *n;
        match (&st.mode, &st.plan) {
            (Mode::Armed, Some(plan)) if plan.site == site && plan.hit == n => {
                let info = InjectedCrash { site, hit: n };
                st.fired = Some(info.clone());
                // Disarm so the unwind (and any later recovery pass) runs
                // to completion instead of re-firing.
                st.mode = Mode::Record;
                st.plan = None;
                Some(info)
            }
            _ => None,
        }
    };
    if let Some(info) = crash {
        std::panic::panic_any(info);
    }
}

/// Starts counting hits per site (no crashing). Clears previous counts.
pub fn start_recording() {
    let mut guard = STATE.lock();
    *guard = Some(FaultState {
        mode: Mode::Record,
        plan: None,
        counts: BTreeMap::new(),
        fired: None,
    });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Arms a crash plan. Hit counting restarts from zero.
pub fn arm(plan: FaultPlan) {
    let mut guard = STATE.lock();
    *guard = Some(FaultState {
        mode: Mode::Armed,
        plan: Some(plan),
        counts: BTreeMap::new(),
        fired: None,
    });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Re-arms with a follow-up plan (e.g. a second crash during recovery)
/// *without* clearing the record of what already fired. Hit counting
/// restarts from zero so the plan's count is relative to the new phase.
pub fn rearm(plan: FaultPlan) {
    let mut guard = STATE.lock();
    match guard.as_mut() {
        Some(st) => {
            st.mode = Mode::Armed;
            st.plan = Some(plan);
            st.counts.clear();
        }
        None => {
            *guard = Some(FaultState {
                mode: Mode::Armed,
                plan: Some(plan),
                counts: BTreeMap::new(),
                fired: None,
            });
        }
    }
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Disables injection entirely and returns the recorded per-site hit
/// counts of the finished phase.
pub fn disarm() -> BTreeMap<&'static str, u64> {
    ACTIVE.store(false, Ordering::Relaxed);
    let mut guard = STATE.lock();
    guard.take().map(|st| st.counts).unwrap_or_default()
}

/// The injected crash that fired since the last [`arm`], if any.
pub fn fired() -> Option<InjectedCrash> {
    STATE.lock().as_ref().and_then(|st| st.fired.clone())
}

/// Snapshot of the current phase's per-site hit counts.
pub fn counts() -> BTreeMap<&'static str, u64> {
    STATE
        .lock()
        .as_ref()
        .map(|st| st.counts.clone())
        .unwrap_or_default()
}

/// Interprets a `catch_unwind` payload: `Some` if the panic was an
/// injected crash, `None` for a genuine failure that must propagate.
pub fn injected(payload: &(dyn std::any::Any + Send)) -> Option<&InjectedCrash> {
    payload.downcast_ref::<InjectedCrash>()
}

/// Enables or disables the strict-mode ack-without-persist lint. Returns
/// the previous setting. Only honoured in debug builds.
pub fn set_lint_persists(on: bool) -> bool {
    LINT_PERSISTS.swap(on, Ordering::Relaxed)
}

/// Whether the ack-without-persist lint is currently enabled.
#[inline]
pub fn lint_persists() -> bool {
    LINT_PERSISTS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; keep these tests on one lock so
    // they do not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_points_are_inert() {
        let _g = TEST_LOCK.lock();
        let _ = disarm();
        point("test.site");
        assert!(counts().is_empty());
    }

    #[test]
    fn recording_counts_hits() {
        let _g = TEST_LOCK.lock();
        start_recording();
        point("test.a");
        point("test.a");
        point("test.b");
        let counts = disarm();
        assert_eq!(counts.get("test.a"), Some(&2));
        assert_eq!(counts.get("test.b"), Some(&1));
    }

    #[test]
    fn armed_plan_fires_at_kth_hit() {
        let _g = TEST_LOCK.lock();
        arm(FaultPlan {
            site: "test.x".into(),
            hit: 3,
        });
        point("test.x");
        point("test.x");
        let r = std::panic::catch_unwind(|| point("test.x"));
        let err = r.expect_err("third hit must crash");
        let info = injected(&*err).expect("payload must be InjectedCrash");
        assert_eq!(info.site, "test.x");
        assert_eq!(info.hit, 3);
        assert_eq!(fired().unwrap().site, "test.x");
        // Disarmed after firing: the same site no longer crashes.
        point("test.x");
        let _ = disarm();
    }

    #[test]
    fn other_sites_do_not_fire() {
        let _g = TEST_LOCK.lock();
        arm(FaultPlan {
            site: "test.only".into(),
            hit: 1,
        });
        point("test.other");
        assert!(fired().is_none());
        let _ = disarm();
    }
}
