//! Deterministic crash-point injection.
//!
//! Every durability-relevant step in the system is annotated with a named
//! *crash site* via [`point`]. When injection is disabled (the default and
//! the benchmark configuration) a site costs one relaxed atomic load.
//! When enabled, the registry either *records* how often each site is hit
//! by a workload, or is *armed* with a [`FaultPlan`]: at the k-th hit of
//! the planned site the calling thread unwinds with an [`InjectedCrash`]
//! panic payload, simulating the CPU dying at exactly that instruction.
//! The harness catches the unwind, tears unflushed cachelines with
//! [`NvmRegion::crash`](crate::NvmRegion::crash), and runs recovery.
//!
//! The registry is process-global (crash sites are free functions deep in
//! the write paths), so explorers and tests that use it must not run
//! concurrently with each other; each driver serializes its own runs.
//!
//! The same module hosts the strict-mode *ack-without-persist lint* gate:
//! when [`set_lint_persists`] is on, [`NvmRegion::assert_persisted`]
//! (called where an operation acknowledges durability) fails fast if any
//! acknowledged byte still sits on a dirty or merely-staged cacheline.
//! The lint assumes a single mutating thread (concurrent writers sharing
//! a cacheline would trip it spuriously), so drivers enable it only for
//! single-threaded phases.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

/// Panic payload thrown by [`point`] when an armed plan triggers.
#[derive(Debug, Clone)]
pub struct InjectedCrash {
    /// The crash site that fired.
    pub site: &'static str,
    /// Which hit of that site fired (1-based).
    pub hit: u64,
}

/// "Crash at the `hit`-th time site `site` is reached" (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Name of the crash site to trigger at.
    pub site: String,
    /// 1-based hit count at which to crash.
    pub hit: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Count hits per site without crashing.
    Record,
    /// Crash at the planned (site, hit).
    Armed,
}

struct FaultState {
    mode: Mode,
    plan: Option<FaultPlan>,
    counts: BTreeMap<&'static str, u64>,
    fired: Option<InjectedCrash>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static LINT_PERSISTS: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<FaultState>> = Mutex::new(None);

/// Declares a crash site. One relaxed load when injection is disabled.
#[inline]
pub fn point(site: &'static str) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    point_slow(site);
}

#[cold]
fn point_slow(site: &'static str) {
    let crash = {
        let mut guard = STATE.lock();
        let Some(st) = guard.as_mut() else {
            return;
        };
        let n = st.counts.entry(site).or_insert(0);
        *n += 1;
        let n = *n;
        match (&st.mode, &st.plan) {
            (Mode::Armed, Some(plan)) if plan.site == site && plan.hit == n => {
                let info = InjectedCrash { site, hit: n };
                st.fired = Some(info.clone());
                // Disarm so the unwind (and any later recovery pass) runs
                // to completion instead of re-firing.
                st.mode = Mode::Record;
                st.plan = None;
                Some(info)
            }
            _ => None,
        }
    };
    if let Some(info) = crash {
        std::panic::panic_any(info);
    }
}

/// Starts counting hits per site (no crashing). Clears previous counts.
pub fn start_recording() {
    let mut guard = STATE.lock();
    *guard = Some(FaultState {
        mode: Mode::Record,
        plan: None,
        counts: BTreeMap::new(),
        fired: None,
    });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Arms a crash plan. Hit counting restarts from zero.
pub fn arm(plan: FaultPlan) {
    let mut guard = STATE.lock();
    *guard = Some(FaultState {
        mode: Mode::Armed,
        plan: Some(plan),
        counts: BTreeMap::new(),
        fired: None,
    });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Re-arms with a follow-up plan (e.g. a second crash during recovery)
/// *without* clearing the record of what already fired. Hit counting
/// restarts from zero so the plan's count is relative to the new phase.
pub fn rearm(plan: FaultPlan) {
    let mut guard = STATE.lock();
    match guard.as_mut() {
        Some(st) => {
            st.mode = Mode::Armed;
            st.plan = Some(plan);
            st.counts.clear();
        }
        None => {
            *guard = Some(FaultState {
                mode: Mode::Armed,
                plan: Some(plan),
                counts: BTreeMap::new(),
                fired: None,
            });
        }
    }
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Disables injection entirely and returns the recorded per-site hit
/// counts of the finished phase.
pub fn disarm() -> BTreeMap<&'static str, u64> {
    ACTIVE.store(false, Ordering::Relaxed);
    let mut guard = STATE.lock();
    guard.take().map(|st| st.counts).unwrap_or_default()
}

/// The injected crash that fired since the last [`arm`], if any.
pub fn fired() -> Option<InjectedCrash> {
    STATE.lock().as_ref().and_then(|st| st.fired.clone())
}

/// Snapshot of the current phase's per-site hit counts.
pub fn counts() -> BTreeMap<&'static str, u64> {
    STATE
        .lock()
        .as_ref()
        .map(|st| st.counts.clone())
        .unwrap_or_default()
}

/// Interprets a `catch_unwind` payload: `Some` if the panic was an
/// injected crash, `None` for a genuine failure that must propagate.
pub fn injected(payload: &(dyn std::any::Any + Send)) -> Option<&InjectedCrash> {
    payload.downcast_ref::<InjectedCrash>()
}

// ---------------------------------------------------------------------------
// Media-corruption injection
// ---------------------------------------------------------------------------

/// How an armed [`CorruptionPlan`] mutates the bytes it targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// XOR `mask` into one byte of the read (a single poisoned cell).
    /// The byte index is chosen deterministically from `seed`.
    BitFlip,
    /// Overwrite the whole read with pseudo-random bytes from `seed`
    /// (a poisoned line returned by the media controller).
    Poison,
    /// Zero the tail half of the read, as if an 8-byte store to the line
    /// tore and only the leading words reached the media.
    TornLine,
}

/// "Corrupt the bytes returned by the `hit`-th read at `site`" (1-based).
///
/// Unlike crash plans, corruption plans do not unwind: they silently
/// falsify the data a read returns, modelling media that serves poisoned
/// or torn lines. The consumer is expected to *detect* the damage via
/// its integrity bytes, not to be warned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionPlan {
    /// Name of the read site to corrupt at (e.g. `"nvm.read"`).
    pub site: String,
    /// 1-based hit count at which the corruption fires.
    pub hit: u64,
    /// The damage model.
    pub kind: CorruptionKind,
    /// Byte mask XORed in by [`CorruptionKind::BitFlip`]; ignored
    /// otherwise. A zero mask is promoted to `0x01` so an armed plan
    /// always changes at least one bit.
    pub mask: u8,
    /// Seed for byte selection / poison bytes.
    pub seed: u64,
}

/// Record of a corruption plan that fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionEvent {
    /// The read site that served corrupted bytes.
    pub site: &'static str,
    /// Which hit of that site fired (1-based).
    pub hit: u64,
    /// The damage model applied.
    pub kind: CorruptionKind,
}

struct CorruptState {
    plan: Option<CorruptionPlan>,
    counts: BTreeMap<&'static str, u64>,
    fired: Option<CorruptionEvent>,
}

static CORRUPT_ACTIVE: AtomicBool = AtomicBool::new(false);
static CORRUPT_STATE: Mutex<Option<CorruptState>> = Mutex::new(None);

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Declares a corruptible read site over a freshly read buffer. One
/// relaxed load when corruption injection is disabled. When an armed plan
/// matches (site, hit), `buf` is mutated in place per the plan's
/// [`CorruptionKind`] before the caller ever sees it.
#[inline]
pub fn corrupt_point(site: &'static str, buf: &mut [u8]) {
    if !CORRUPT_ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    corrupt_slow(site, buf);
}

/// Word-sized variant of [`corrupt_point`] for atomic u64 loads.
#[inline]
pub fn corrupt_word(site: &'static str, v: u64) -> u64 {
    if !CORRUPT_ACTIVE.load(Ordering::Relaxed) {
        return v;
    }
    let mut b = v.to_le_bytes();
    corrupt_slow(site, &mut b);
    u64::from_le_bytes(b)
}

#[cold]
fn corrupt_slow(site: &'static str, buf: &mut [u8]) {
    let mut guard = CORRUPT_STATE.lock();
    let Some(st) = guard.as_mut() else {
        return;
    };
    let n = st.counts.entry(site).or_insert(0);
    *n += 1;
    let n = *n;
    let Some(plan) = st.plan.as_ref() else {
        return;
    };
    if plan.site != site || plan.hit != n || buf.is_empty() {
        return;
    }
    let mut rng = plan.seed ^ 0xc0ff_ee00_dead_1234;
    match plan.kind {
        CorruptionKind::BitFlip => {
            let idx = (splitmix64(&mut rng) as usize) % buf.len();
            let mask = if plan.mask == 0 { 0x01 } else { plan.mask };
            buf[idx] ^= mask;
        }
        CorruptionKind::Poison => {
            for b in buf.iter_mut() {
                *b = splitmix64(&mut rng) as u8;
            }
        }
        CorruptionKind::TornLine => {
            let half = buf.len() / 2;
            for b in &mut buf[half..] {
                *b = 0;
            }
        }
    }
    st.fired = Some(CorruptionEvent {
        site,
        hit: n,
        kind: plan.kind,
    });
    // One plan, one corruption: disarm so later reads are clean.
    st.plan = None;
}

/// Arms a corruption plan. Hit counting restarts from zero.
pub fn arm_corruption(plan: CorruptionPlan) {
    let mut guard = CORRUPT_STATE.lock();
    *guard = Some(CorruptState {
        plan: Some(plan),
        counts: BTreeMap::new(),
        fired: None,
    });
    CORRUPT_ACTIVE.store(true, Ordering::Relaxed);
}

/// Disables corruption injection and returns the per-site read counts of
/// the finished phase.
pub fn disarm_corruption() -> BTreeMap<&'static str, u64> {
    CORRUPT_ACTIVE.store(false, Ordering::Relaxed);
    let mut guard = CORRUPT_STATE.lock();
    guard.take().map(|st| st.counts).unwrap_or_default()
}

/// The corruption event that fired since the last [`arm_corruption`],
/// if any.
pub fn corruption_fired() -> Option<CorruptionEvent> {
    CORRUPT_STATE
        .lock()
        .as_ref()
        .and_then(|st| st.fired.clone())
}

/// Enables or disables the strict-mode ack-without-persist lint. Returns
/// the previous setting. Only honoured in debug builds.
pub fn set_lint_persists(on: bool) -> bool {
    LINT_PERSISTS.swap(on, Ordering::Relaxed)
}

/// Whether the ack-without-persist lint is currently enabled.
#[inline]
pub fn lint_persists() -> bool {
    LINT_PERSISTS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; keep these tests on one lock so
    // they do not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_points_are_inert() {
        let _g = TEST_LOCK.lock();
        let _ = disarm();
        point("test.site");
        assert!(counts().is_empty());
    }

    #[test]
    fn recording_counts_hits() {
        let _g = TEST_LOCK.lock();
        start_recording();
        point("test.a");
        point("test.a");
        point("test.b");
        let counts = disarm();
        assert_eq!(counts.get("test.a"), Some(&2));
        assert_eq!(counts.get("test.b"), Some(&1));
    }

    #[test]
    fn armed_plan_fires_at_kth_hit() {
        let _g = TEST_LOCK.lock();
        arm(FaultPlan {
            site: "test.x".into(),
            hit: 3,
        });
        point("test.x");
        point("test.x");
        let r = std::panic::catch_unwind(|| point("test.x"));
        let err = r.expect_err("third hit must crash");
        let info = injected(&*err).expect("payload must be InjectedCrash");
        assert_eq!(info.site, "test.x");
        assert_eq!(info.hit, 3);
        assert_eq!(fired().unwrap().site, "test.x");
        // Disarmed after firing: the same site no longer crashes.
        point("test.x");
        let _ = disarm();
    }

    #[test]
    fn other_sites_do_not_fire() {
        let _g = TEST_LOCK.lock();
        arm(FaultPlan {
            site: "test.only".into(),
            hit: 1,
        });
        point("test.other");
        assert!(fired().is_none());
        let _ = disarm();
    }

    // Corruption state is likewise process-global; serialize on the same
    // lock as the crash tests for simplicity.

    #[test]
    fn disabled_corruption_points_are_inert() {
        let _g = TEST_LOCK.lock();
        let _ = disarm_corruption();
        let mut buf = [0xAAu8; 8];
        corrupt_point("test.read", &mut buf);
        assert_eq!(buf, [0xAAu8; 8]);
        assert!(corruption_fired().is_none());
    }

    #[test]
    fn bit_flip_fires_once_at_kth_hit() {
        let _g = TEST_LOCK.lock();
        arm_corruption(CorruptionPlan {
            site: "test.read".into(),
            hit: 2,
            kind: CorruptionKind::BitFlip,
            mask: 0x40,
            seed: 7,
        });
        let clean = [0x11u8; 16];
        let mut first = clean;
        corrupt_point("test.read", &mut first);
        assert_eq!(first, clean, "hit 1 must be clean");
        let mut second = clean;
        corrupt_point("test.read", &mut second);
        let flipped: Vec<usize> = (0..16).filter(|&i| second[i] != clean[i]).collect();
        assert_eq!(flipped.len(), 1, "exactly one byte flipped");
        assert_eq!(second[flipped[0]] ^ clean[flipped[0]], 0x40);
        let ev = corruption_fired().expect("event recorded");
        assert_eq!(ev.site, "test.read");
        assert_eq!(ev.hit, 2);
        // Disarmed after firing: later reads come back clean.
        let mut third = clean;
        corrupt_point("test.read", &mut third);
        assert_eq!(third, clean);
        let counts = disarm_corruption();
        assert_eq!(counts.get("test.read"), Some(&3));
    }

    #[test]
    fn poison_rewrites_whole_buffer_deterministically() {
        let _g = TEST_LOCK.lock();
        let mut bufs = Vec::new();
        for _ in 0..2 {
            arm_corruption(CorruptionPlan {
                site: "test.read".into(),
                hit: 1,
                kind: CorruptionKind::Poison,
                mask: 0,
                seed: 99,
            });
            let mut buf = [0u8; 32];
            corrupt_point("test.read", &mut buf);
            let _ = disarm_corruption();
            bufs.push(buf);
        }
        assert_ne!(bufs[0], [0u8; 32], "poison must change the bytes");
        assert_eq!(bufs[0], bufs[1], "same seed, same poison");
    }

    #[test]
    fn torn_line_zeroes_tail_half_of_word() {
        let _g = TEST_LOCK.lock();
        arm_corruption(CorruptionPlan {
            site: "test.load".into(),
            hit: 1,
            kind: CorruptionKind::TornLine,
            mask: 0,
            seed: 0,
        });
        let v = corrupt_word("test.load", u64::MAX);
        let _ = disarm_corruption();
        assert_eq!(v, 0x0000_0000_FFFF_FFFF, "little-endian tail bytes zeroed");
    }
}
