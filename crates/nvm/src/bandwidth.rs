//! NVM bandwidth modeling.
//!
//! Beyond latency, AEP's distinguishing limit is bandwidth: roughly 1/3 of
//! DRAM for reads and 1/6 for writes (§2.1). Bandwidth is what the paper's
//! concurrency arguments lean on — "heavyweight concurrency control can
//! easily exhaust NVM's limited bandwidth" — so multi-threaded runs need a
//! *shared* throughput ceiling, not just per-access latency.
//!
//! [`BandwidthLimiter`] is a lock-free token bucket: a region (or a group
//! of regions sharing one limiter, like DIMMs behind one controller)
//! accrues byte-credit with wall-clock time; each access consumes credit
//! and spins out the deficit. Single-threaded workloads rarely hit the
//! ceiling (latency dominates); with many threads the limiter converts
//! excess offered load into stalls, exactly like saturated DIMMs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::latency::busy_wait_ns;

/// Bandwidth ceilings in bytes per microsecond (= MB/s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BandwidthModel {
    /// Read ceiling (AEP: ~6 GB/s random read per socket → default 6000).
    pub read_bytes_per_us: u32,
    /// Write ceiling (AEP: ~2 GB/s sustained write → default 2000).
    pub write_bytes_per_us: u32,
}

impl BandwidthModel {
    /// AEP-like defaults (per-socket figures from the Optane measurement
    /// literature, scaled to a single simulated device).
    pub const fn aep() -> Self {
        BandwidthModel {
            read_bytes_per_us: 6000,
            write_bytes_per_us: 2000,
        }
    }
}

/// Shared token-bucket limiter. Cheap when under the ceiling: one atomic
/// add and a comparison per access.
#[derive(Debug)]
pub struct BandwidthLimiter {
    model: BandwidthModel,
    epoch: Instant,
    read_consumed: AtomicU64,
    write_consumed: AtomicU64,
}

impl BandwidthLimiter {
    /// A fresh limiter; credit accrues from now.
    pub fn new(model: BandwidthModel) -> Self {
        BandwidthLimiter {
            model,
            epoch: Instant::now(),
            read_consumed: AtomicU64::new(0),
            write_consumed: AtomicU64::new(0),
        }
    }

    /// The model in force.
    pub fn model(&self) -> BandwidthModel {
        self.model
    }

    /// Total read bytes charged so far (observability/tests).
    pub fn consumed_read_bytes(&self) -> u64 {
        self.read_consumed.load(Ordering::Relaxed)
    }

    /// Total write bytes charged so far (observability/tests).
    pub fn consumed_write_bytes(&self) -> u64 {
        self.write_consumed.load(Ordering::Relaxed)
    }

    #[inline]
    fn throttle(&self, consumed: &AtomicU64, bytes: u64, rate_bytes_per_us: u32) {
        if rate_bytes_per_us == 0 {
            return;
        }
        let total = consumed.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let budget_us = self.epoch.elapsed().as_micros() as u64;
        let budget_bytes = budget_us.saturating_mul(rate_bytes_per_us as u64);
        if total > budget_bytes {
            // Deficit: stall until the bucket catches up.
            let deficit = total - budget_bytes;
            let wait_ns = deficit.saturating_mul(1000) / rate_bytes_per_us as u64;
            busy_wait_ns(wait_ns);
        }
    }

    /// Charges a read of `bytes` against the read ceiling.
    #[inline]
    pub fn charge_read(&self, bytes: usize) {
        self.throttle(&self.read_consumed, bytes as u64, self.model.read_bytes_per_us);
    }

    /// Charges a write of `bytes` against the write ceiling.
    #[inline]
    pub fn charge_write(&self, bytes: usize) {
        self.throttle(&self.write_consumed, bytes as u64, self.model.write_bytes_per_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn under_the_ceiling_is_free() {
        // Tiny trickle against a huge ceiling: negligible time.
        let lim = BandwidthLimiter::new(BandwidthModel {
            read_bytes_per_us: 100_000,
            write_bytes_per_us: 100_000,
        });
        std::thread::sleep(Duration::from_millis(5)); // accrue credit
        let start = Instant::now();
        for _ in 0..1000 {
            lim.charge_read(64);
        }
        assert!(start.elapsed().as_millis() < 50);
    }

    #[test]
    fn sustained_overload_converges_to_the_ceiling() {
        // Ceiling 200 MB/s; push 2 MB of reads as fast as possible: must
        // take ≈10 ms wall-clock (allow 5..100 ms for timer noise).
        let lim = BandwidthLimiter::new(BandwidthModel {
            read_bytes_per_us: 200,
            write_bytes_per_us: 200,
        });
        let start = Instant::now();
        let mut pushed = 0u64;
        while pushed < 2_000_000 {
            lim.charge_read(256);
            pushed += 256;
        }
        let ms = start.elapsed().as_millis();
        // The hard invariant is the lower bound (throttling happened);
        // the upper bound is generous because debug builds and parallel
        // test threads inflate the calibrated spins.
        assert!((5..2000).contains(&ms), "2MB at 200MB/s took {ms}ms");
    }

    #[test]
    fn read_and_write_buckets_are_independent() {
        let lim = BandwidthLimiter::new(BandwidthModel {
            read_bytes_per_us: 1,
            write_bytes_per_us: 1_000_000,
        });
        // Writes against the huge ceiling stay fast even though the read
        // bucket is tiny.
        let start = Instant::now();
        for _ in 0..1000 {
            lim.charge_write(64);
        }
        assert!(start.elapsed().as_millis() < 50);
    }

    #[test]
    fn zero_rate_disables() {
        let lim = BandwidthLimiter::new(BandwidthModel {
            read_bytes_per_us: 0,
            write_bytes_per_us: 0,
        });
        let start = Instant::now();
        for _ in 0..10_000 {
            lim.charge_read(1_000_000);
            lim.charge_write(1_000_000);
        }
        assert!(start.elapsed().as_millis() < 100);
    }

    #[test]
    fn concurrent_threads_share_one_budget() {
        use std::sync::Arc;
        // 100 MB/s shared; 2 threads × 1 MB = 2 MB → ≥ ~15 ms total.
        let lim = Arc::new(BandwidthLimiter::new(BandwidthModel {
            read_bytes_per_us: 100,
            write_bytes_per_us: 100,
        }));
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let lim = Arc::clone(&lim);
                s.spawn(move || {
                    let mut pushed = 0;
                    while pushed < 1_000_000 {
                        lim.charge_read(256);
                        pushed += 256;
                    }
                });
            }
        });
        let ms = start.elapsed().as_millis();
        assert!(ms >= 10, "2MB at shared 100MB/s took only {ms}ms");
    }
}
