//! Simulated persistent memory for the HDNH reproduction.
//!
//! The paper evaluates on Intel Optane DC Persistent Memory (AEP). This
//! environment has no NVM hardware, so this crate provides the closest
//! software equivalent that exercises the same code paths:
//!
//! * [`NvmRegion`] — an offset-addressed, heap-backed memory region with the
//!   access API real persistent-memory code uses: raw byte/typed reads and
//!   writes, 8-byte atomic operations, per-cacheline `clwb`-style
//!   [`flush`](NvmRegion::flush) and `sfence`-style
//!   [`fence`](NvmRegion::fence).
//! * [`LatencyModel`] — injects AEP's measured latency profile (≈3× DRAM
//!   read latency, ≈DRAM write latency, 256-byte media access granularity,
//!   per-line flush cost) with a calibrated busy-wait, so benchmark *shapes*
//!   match the hardware even though absolute numbers differ.
//! * [`NvmStats`] — counts every media block read, line written, flush and
//!   fence. The paper's arguments are about these counts; the stats make
//!   them directly observable.
//! * strict mode ([`NvmOptions::strict`]) — a shadow "media" image with
//!   dirty/staged cacheline tracking and randomized [`crash`](NvmRegion::crash)
//!   simulation (unflushed lines survive or vanish at random, optionally
//!   torn at 8-byte granularity), used by the crash-consistency tests.
//! * file backend ([`Backend::Pool`]) — regions mapped `MAP_SHARED` over
//!   files in a [`PoolDir`], flushed with `msync`. The store survives real
//!   `kill -9`, so the recovery protocol can be exercised against actual
//!   process death instead of only the simulated crash model.
//!
//! # Persistence model
//!
//! Identical to the ADR model the paper describes (§2.1): a store is
//! persistent only once its cacheline has been flushed **and** a subsequent
//! fence has executed. Unflushed lines may still reach media through cache
//! eviction — so after a simulated crash each unflushed dirty line
//! independently survives or is dropped. Code that forgets a flush does not
//! fail deterministically on real hardware and does not fail
//! deterministically here either; the randomized crash tests run many
//! iterations to expose such bugs.


#![warn(missing_docs)]
pub mod bandwidth;
pub mod fault;
pub mod latency;
pub mod mapfile;
pub mod pod;
pub mod pool;
pub mod region;
pub mod shadow;
pub mod stats;

pub use bandwidth::{BandwidthLimiter, BandwidthModel};
pub use fault::{CorruptionEvent, CorruptionKind, CorruptionPlan, FaultPlan, InjectedCrash};
pub use latency::LatencyModel;
pub use mapfile::{FileMap, NvmIoError};
pub use pod::Pod;
pub use pool::{PoolDir, META_FILE};
pub use region::{Backend, NvmOptions, NvmRegion, SyncPolicy, CACHELINE, NVM_BLOCK};
pub use shadow::{powerloss_crash_file, LossMode, PowerlossReport};
pub use stats::{NvmStats, PerOpStats, StatsSnapshot};
