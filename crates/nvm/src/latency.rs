//! AEP latency model with calibrated busy-wait injection.
//!
//! The published Optane measurements the paper relies on (Izraelevitz et
//! al., Yang et al.) report: random read latency ≈3× DRAM, write latency ≈
//! DRAM (stores commit at the ADR domain), media access granularity 256 B,
//! and a per-line cost for `clwb`+`sfence` persistence. We reproduce that
//! *profile* by spinning for a configured number of nanoseconds per media
//! event. The spin is calibrated once per process against
//! `std::time::Instant`, so the injected delays are real wall-clock time and
//! throughput ratios between schemes track their NVM access counts exactly
//! as they would on hardware.

use std::sync::OnceLock;
use std::time::Instant;

/// Extra latency charged per media event, in nanoseconds.
///
/// All values are *additional* time relative to DRAM: the simulated region
/// already lives in DRAM, so DRAM-speed access is the baseline and the model
/// only injects the AEP surcharge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Master switch. Disabled models skip the calibration and all spinning
    /// (unit tests run with this off).
    pub enabled: bool,
    /// Surcharge per 256-byte media block on a read. AEP random read is
    /// ≈300 ns vs ≈100 ns DRAM, so the default surcharge is 200 ns.
    pub read_block_ns: u32,
    /// Surcharge per cacheline written. Writes commit at the ADR domain at
    /// near-DRAM latency; default 0.
    pub write_line_ns: u32,
    /// Cost of one `clwb` of a dirty line (store-to-ADR drain observed at
    /// the next fence; charged at flush for simplicity). Default 60 ns.
    pub flush_ns: u32,
    /// Cost of one `sfence`. Default 30 ns.
    pub fence_ns: u32,
}

impl LatencyModel {
    /// Latency injection disabled — functional testing.
    pub const fn off() -> Self {
        LatencyModel {
            enabled: false,
            read_block_ns: 0,
            write_line_ns: 0,
            flush_ns: 0,
            fence_ns: 0,
        }
    }

    /// Default AEP-like profile used by all benchmarks.
    pub const fn aep() -> Self {
        LatencyModel {
            enabled: true,
            read_block_ns: 200,
            write_line_ns: 0,
            flush_ns: 60,
            fence_ns: 30,
        }
    }

    /// An AEP profile scaled by `factor` (×100 = percent). Used by
    /// sensitivity ablations.
    pub fn aep_scaled(factor: f64) -> Self {
        let s = |ns: u32| (ns as f64 * factor).round() as u32;
        LatencyModel {
            enabled: true,
            read_block_ns: s(200),
            write_line_ns: 0,
            flush_ns: s(60),
            fence_ns: s(30),
        }
    }

    /// Spin for the read surcharge of `blocks` media blocks.
    #[inline]
    pub fn charge_read(&self, blocks: usize) {
        if self.enabled && self.read_block_ns > 0 {
            busy_wait_ns(self.read_block_ns as u64 * blocks as u64);
        }
    }

    /// Spin for the write surcharge of `lines` cachelines.
    #[inline]
    pub fn charge_write(&self, lines: usize) {
        if self.enabled && self.write_line_ns > 0 {
            busy_wait_ns(self.write_line_ns as u64 * lines as u64);
        }
    }

    /// Spin for the flush cost of `lines` cachelines.
    #[inline]
    pub fn charge_flush(&self, lines: usize) {
        if self.enabled && self.flush_ns > 0 {
            busy_wait_ns(self.flush_ns as u64 * lines as u64);
        }
    }

    /// Spin for one fence.
    #[inline]
    pub fn charge_fence(&self) {
        if self.enabled && self.fence_ns > 0 {
            busy_wait_ns(self.fence_ns as u64);
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::off()
    }
}

/// Spin-loop iterations executed per nanosecond, measured once per process.
fn spins_per_ns() -> f64 {
    static SPINS: OnceLock<f64> = OnceLock::new();
    *SPINS.get_or_init(|| {
        // Warm up, then time a fixed spin count. A few repetitions and the
        // median keep scheduler noise out of the calibration.
        const ITERS: u64 = 2_000_000;
        let mut samples = [0f64; 5];
        for s in &mut samples {
            let start = Instant::now();
            for _ in 0..ITERS {
                std::hint::spin_loop();
            }
            let ns = start.elapsed().as_nanos().max(1) as f64;
            *s = ITERS as f64 / ns;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[2].max(1e-3)
    })
}

/// Busy-wait for approximately `ns` nanoseconds.
///
/// Short waits (the common case: one block read ≈200 ns) use a calibrated
/// spin count rather than querying the clock, because `Instant::now` itself
/// costs ~20-40 ns and would distort small delays.
#[inline]
pub fn busy_wait_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let spins = (ns as f64 * spins_per_ns()) as u64;
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_model_charges_nothing_fast() {
        let m = LatencyModel::off();
        let start = Instant::now();
        for _ in 0..1_000_000 {
            m.charge_read(4);
        }
        // A million no-op charges should be near-instant.
        assert!(start.elapsed().as_millis() < 200);
    }

    #[test]
    fn busy_wait_is_roughly_calibrated() {
        // Warm the calibration.
        busy_wait_ns(1);
        let start = Instant::now();
        for _ in 0..100 {
            busy_wait_ns(10_000);
        }
        let elapsed = start.elapsed().as_micros() as f64;
        // 100 × 10 µs = 1 ms nominal; accept 0.3–10× (CI machines vary).
        assert!(
            (300.0..10_000.0).contains(&elapsed),
            "elapsed {elapsed} µs for nominal 1000 µs"
        );
    }

    #[test]
    fn aep_profile_matches_published_ratios() {
        let m = LatencyModel::aep();
        assert!(m.enabled);
        // 3x read claim: 100ns DRAM + 200ns surcharge = 300ns.
        assert_eq!(m.read_block_ns, 200);
        assert_eq!(m.write_line_ns, 0);
    }

    #[test]
    fn scaled_profile_scales() {
        let m = LatencyModel::aep_scaled(0.5);
        assert_eq!(m.read_block_ns, 100);
        assert_eq!(m.flush_ns, 30);
    }
}
