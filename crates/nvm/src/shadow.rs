//! Power-loss simulation for file-backed pool regions.
//!
//! The pool backend survives process death because `MAP_SHARED` pages live
//! in the kernel's page cache — but a process kill never *loses* those
//! pages. Real power loss does: dirty pages that no completed
//! `msync(MS_SYNC)` covered can be dropped, torn, or written back out of
//! order by the failing device. This module models that gap.
//!
//! With [`NvmOptions::shadow_pool`](crate::NvmOptions) enabled, every
//! region file `seg-N.dat` gets a sidecar `seg-N.dat.shadow` holding the
//! *guaranteed-on-media* image: bytes reach the sidecar only when a
//! blocking fence ([`SyncPolicy::Sync`](crate::SyncPolicy)) or a full
//! `sync_to_disk` completes. Under [`SyncPolicy::Async`](crate::SyncPolicy)
//! fenced lines stay at risk — `MS_ASYNC` only schedules writeback, which
//! is exactly why the async policy is documented as not power-loss safe.
//!
//! [`powerloss_crash_file`] then simulates pulling the plug on a closed
//! (unmapped) region: the at-risk lines — where the working file differs
//! from the sidecar — are salvaged or lost according to a [`LossMode`],
//! and the surviving image replaces the region file, ready for a normal
//! recovery open.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use hdnh_common::rng::XorShift64Star;

use crate::mapfile::NvmIoError;
use crate::region::CACHELINE;

/// OS page size: the granularity at which writeback drops/reorders.
pub const PAGE: usize = 4096;

/// How the un-fenced portion of a region is damaged at the crash point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossMode {
    /// Each page holding at-risk lines independently persists or vanishes.
    DropPages,
    /// Each at-risk cacheline independently persists or vanishes, torn at
    /// 8-byte granularity inside the line (AEP's failure-atomicity unit).
    TearLines,
    /// At-risk pages are written back in a random order and power fails at
    /// a random point in that stream: a prefix persists, the rest is lost —
    /// persistence order bears no relation to program order.
    ReorderPages,
}

impl LossMode {
    /// All modes, for matrix sweeps.
    pub const ALL: [LossMode; 3] = [LossMode::DropPages, LossMode::TearLines, LossMode::ReorderPages];

    /// Deterministic mode choice for seeded schedules.
    pub fn from_seed(seed: u64) -> LossMode {
        Self::ALL[(seed % 3) as usize]
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LossMode::DropPages => "drop_pages",
            LossMode::TearLines => "tear_lines",
            LossMode::ReorderPages => "reorder_pages",
        }
    }
}

/// What one simulated power loss did to a region file.
#[derive(Clone, Copy, Debug, Default)]
pub struct PowerlossReport {
    /// Cachelines whose working content was not covered by a completed
    /// blocking sync (candidates for loss).
    pub at_risk_lines: usize,
    /// Cachelines that did not survive (fully or partially lost).
    pub lost_lines: usize,
}

/// The sidecar path holding a region file's guaranteed-persisted image.
pub fn sidecar_path(region: &Path) -> PathBuf {
    let mut os = region.as_os_str().to_os_string();
    os.push(".shadow");
    PathBuf::from(os)
}

/// Best-effort removal of a region file's sidecar (call wherever the
/// region file itself is unlinked).
pub fn remove_sidecar(region: &Path) {
    let _ = std::fs::remove_file(sidecar_path(region));
}

/// Shadow-media tracking for one live file-backed region: the sidecar file
/// plus which cachelines of the working mapping it does not yet cover.
pub(crate) struct ShadowMedia {
    file: File,
    path: PathBuf,
    len: usize,
    /// Lines written but not flushed.
    dirty: HashSet<usize>,
    /// Lines flushed (accumulated for msync) but not yet covered by a
    /// completed blocking fence.
    staged: HashSet<usize>,
}

impl ShadowMedia {
    /// Creates (or resets) the sidecar so it holds exactly `image` — the
    /// content that is already durable when the region comes up: all
    /// zeroes for a fresh allocation, the current file bytes for a reopen
    /// (a fresh boot finds on media whatever the file holds).
    pub(crate) fn create(region_path: &Path, image: &[u8]) -> Result<Self, NvmIoError> {
        let path = sidecar_path(region_path);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| NvmIoError::new("open", &path, e))?;
        write_at(&file, 0, image).map_err(|e| NvmIoError::new("write", &path, e))?;
        file.sync_all().map_err(|e| NvmIoError::new("fsync", &path, e))?;
        Ok(ShadowMedia {
            file,
            path,
            len: image.len(),
            dirty: HashSet::new(),
            staged: HashSet::new(),
        })
    }

    pub(crate) fn mark_dirty(&mut self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        for line in (off / CACHELINE)..=((off + len - 1) / CACHELINE) {
            // A new store is not covered by an earlier flush's msync range
            // having been fenced: back to dirty.
            self.staged.remove(&line);
            self.dirty.insert(line);
        }
    }

    pub(crate) fn on_flush(&mut self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        for line in (off / CACHELINE)..=((off + len - 1) / CACHELINE) {
            if self.dirty.remove(&line) {
                self.staged.insert(line);
            }
        }
    }

    /// Commits every staged line's working bytes to the sidecar: called
    /// when a blocking (`MS_SYNC`) fence has completed, i.e. those lines
    /// are genuinely on media. `copy` reads the working image.
    pub(crate) fn commit_staged(
        &mut self,
        copy: impl Fn(usize, &mut [u8]),
    ) -> Result<(), NvmIoError> {
        let staged: Vec<usize> = self.staged.drain().collect();
        self.write_lines(&staged, copy)
    }

    /// Commits *everything* (dirty and staged): the `sync_to_disk` /
    /// clean-shutdown path, whose `msync(MS_SYNC)` + `fsync` covers the
    /// whole mapping.
    pub(crate) fn commit_all(
        &mut self,
        copy: impl Fn(usize, &mut [u8]),
    ) -> Result<(), NvmIoError> {
        let all: Vec<usize> = self.dirty.drain().chain(self.staged.drain()).collect();
        self.write_lines(&all, copy)
    }

    fn write_lines(
        &self,
        lines: &[usize],
        copy: impl Fn(usize, &mut [u8]),
    ) -> Result<(), NvmIoError> {
        let mut buf = [0u8; CACHELINE];
        for &line in lines {
            let start = line * CACHELINE;
            let end = (start + CACHELINE).min(self.len);
            copy(start, &mut buf[..end - start]);
            write_at(&self.file, start as u64, &buf[..end - start])
                .map_err(|e| NvmIoError::new("write", &self.path, e))?;
        }
        Ok(())
    }

    /// Media decay lands on the persisted image too (mirrors the strict
    /// heap model's behaviour in [`NvmRegion::corrupt`](crate::NvmRegion)).
    pub(crate) fn corrupt(&self, off: usize, mask: &[u8]) -> Result<(), NvmIoError> {
        let mut cur = vec![0u8; mask.len()];
        read_at(&self.file, off as u64, &mut cur)
            .map_err(|e| NvmIoError::new("read", &self.path, e))?;
        for (b, m) in cur.iter_mut().zip(mask) {
            *b ^= m;
        }
        write_at(&self.file, off as u64, &cur)
            .map_err(|e| NvmIoError::new("write", &self.path, e))?;
        Ok(())
    }

    pub(crate) fn at_risk(&self) -> usize {
        self.dirty.len() + self.staged.len()
    }

    // Only called from the debug-assertions ack lint in `region.rs`.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) fn is_dirty(&self, line: usize) -> bool {
        self.dirty.contains(&line)
    }

    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) fn is_staged(&self, line: usize) -> bool {
        self.staged.contains(&line)
    }
}

/// Simulates power loss on a closed region file.
///
/// The caller must have dropped every mapping of the file first (a crash
/// test quiesces and drops its table before "pulling the plug"). At-risk
/// lines — where the working file differs from its sidecar — survive or
/// die per `mode`; the resulting image overwrites both the region file and
/// the sidecar, so a subsequent open (with or without shadow tracking)
/// recovers from exactly what "media" held.
pub fn powerloss_crash_file(
    region: &Path,
    rng: &mut XorShift64Star,
    mode: LossMode,
) -> Result<PowerlossReport, NvmIoError> {
    let working = std::fs::read(region).map_err(|e| NvmIoError::new("read", region, e))?;
    let side = sidecar_path(region);
    let mut media = std::fs::read(&side).map_err(|e| NvmIoError::new("read", &side, e))?;
    if media.len() != working.len() {
        return Err(NvmIoError::msg(
            "crash",
            region,
            format!(
                "shadow sidecar is {} bytes but the region is {}",
                media.len(),
                working.len()
            ),
        ));
    }
    let n_lines = working.len().div_ceil(CACHELINE);
    let at_risk: Vec<usize> = (0..n_lines)
        .filter(|&l| {
            let s = l * CACHELINE;
            let e = (s + CACHELINE).min(working.len());
            working[s..e] != media[s..e]
        })
        .collect();
    let mut report = PowerlossReport {
        at_risk_lines: at_risk.len(),
        lost_lines: 0,
    };
    let salvage_line = |media: &mut [u8], line: usize| {
        let s = line * CACHELINE;
        let e = (s + CACHELINE).min(working.len());
        media[s..e].copy_from_slice(&working[s..e]);
    };
    match mode {
        LossMode::DropPages => {
            let mut pages: Vec<usize> = at_risk.iter().map(|l| l * CACHELINE / PAGE).collect();
            pages.dedup();
            let survivors: HashSet<usize> =
                pages.into_iter().filter(|_| rng.next_u64() & 1 == 0).collect();
            for &line in &at_risk {
                if survivors.contains(&(line * CACHELINE / PAGE)) {
                    salvage_line(&mut media, line);
                } else {
                    report.lost_lines += 1;
                }
            }
        }
        LossMode::TearLines => {
            for &line in &at_risk {
                let s = line * CACHELINE;
                let e = (s + CACHELINE).min(working.len());
                let mut lost = false;
                for woff in (s..e).step_by(8) {
                    let wend = (woff + 8).min(e);
                    if rng.next_u64() & 1 == 0 {
                        media[woff..wend].copy_from_slice(&working[woff..wend]);
                    } else {
                        lost = true;
                    }
                }
                if lost {
                    report.lost_lines += 1;
                }
            }
        }
        LossMode::ReorderPages => {
            let mut pages: Vec<usize> = at_risk.iter().map(|l| l * CACHELINE / PAGE).collect();
            pages.dedup();
            // Fisher-Yates: the device writes pages back in arbitrary order.
            for i in (1..pages.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                pages.swap(i, j);
            }
            // Power fails somewhere in that stream: a prefix made it.
            let cut = if pages.is_empty() {
                0
            } else {
                (rng.next_u64() % (pages.len() as u64 + 1)) as usize
            };
            let survivors: HashSet<usize> = pages[..cut].iter().copied().collect();
            for &line in &at_risk {
                if survivors.contains(&(line * CACHELINE / PAGE)) {
                    salvage_line(&mut media, line);
                } else {
                    report.lost_lines += 1;
                }
            }
        }
    }
    // The surviving image is what the hardware would present at next boot:
    // install it as both the region file and the new shadow baseline.
    write_file(region, &media)?;
    write_file(&side, &media)?;
    Ok(report)
}

fn write_file(path: &Path, bytes: &[u8]) -> Result<(), NvmIoError> {
    let f = OpenOptions::new()
        .write(true)
        .truncate(true)
        .create(true)
        .open(path)
        .map_err(|e| NvmIoError::new("open", path, e))?;
    write_at(&f, 0, bytes).map_err(|e| NvmIoError::new("write", path, e))?;
    f.sync_all().map_err(|e| NvmIoError::new("fsync", path, e))?;
    Ok(())
}

/// Positional write via seek on a shared handle (`&File` implements
/// `Write`/`Seek`), keeping the module portable off unix.
fn write_at(mut f: &File, off: u64, bytes: &[u8]) -> std::io::Result<()> {
    f.seek(SeekFrom::Start(off))?;
    f.write_all(bytes)
}

/// Positional read counterpart of [`write_at`].
fn read_at(mut f: &File, off: u64, out: &mut [u8]) -> std::io::Result<()> {
    f.seek(SeekFrom::Start(off))?;
    f.read_exact(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hdnh_shadow_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("seg-0.dat")
    }

    fn cleanup(region: &Path) {
        let _ = std::fs::remove_dir_all(region.parent().unwrap());
    }

    #[test]
    fn sidecar_path_appends_extension() {
        assert_eq!(
            sidecar_path(Path::new("/p/seg-1.dat")),
            Path::new("/p/seg-1.dat.shadow")
        );
    }

    #[test]
    fn committed_lines_survive_any_mode() {
        for mode in LossMode::ALL {
            let region = tmp(&format!("commit_{}", mode.name()));
            let working = vec![0xAB; 8192];
            write_file(&region, &working).unwrap();
            // Sidecar == working: nothing at risk.
            let mut sh = ShadowMedia::create(&region, &working).unwrap();
            assert_eq!(sh.at_risk(), 0);
            sh.mark_dirty(0, 0); // no-op
            let mut rng = XorShift64Star::new(9);
            let rep = powerloss_crash_file(&region, &mut rng, mode).unwrap();
            assert_eq!(rep.at_risk_lines, 0);
            assert_eq!(std::fs::read(&region).unwrap(), working);
            cleanup(&region);
        }
    }

    #[test]
    fn unfenced_lines_can_be_lost_in_every_mode() {
        for mode in LossMode::ALL {
            let region = tmp(&format!("lose_{}", mode.name()));
            write_file(&region, &vec![0u8; 16384]).unwrap();
            let _sh = ShadowMedia::create(&region, &vec![0u8; 16384]).unwrap();
            // Working image moves on without any blocking fence.
            write_file(&region, &vec![0xEE; 16384]).unwrap();
            let mut lost_seen = false;
            for seed in 0..64 {
                // Reset both images for a fresh trial.
                write_file(&region, &vec![0xEE; 16384]).unwrap();
                write_file(&sidecar_path(&region), &vec![0u8; 16384]).unwrap();
                let mut rng = XorShift64Star::new(seed);
                let rep = powerloss_crash_file(&region, &mut rng, mode).unwrap();
                assert_eq!(rep.at_risk_lines, 16384 / CACHELINE);
                if rep.lost_lines > 0 {
                    lost_seen = true;
                    break;
                }
            }
            assert!(lost_seen, "mode {} never lost anything", mode.name());
            cleanup(&region);
        }
    }

    #[test]
    fn tear_mode_tears_at_word_granularity() {
        let region = tmp("tear");
        write_file(&region, &vec![0u8; 4096]).unwrap();
        let _sh = ShadowMedia::create(&region, &vec![0u8; 4096]).unwrap();
        write_file(&region, &vec![0xEE; 4096]).unwrap();
        let mut torn_seen = false;
        for seed in 0..128 {
            write_file(&region, &vec![0xEE; 4096]).unwrap();
            write_file(&sidecar_path(&region), &vec![0u8; 4096]).unwrap();
            let mut rng = XorShift64Star::new(seed);
            powerloss_crash_file(&region, &mut rng, LossMode::TearLines).unwrap();
            let img = std::fs::read(&region).unwrap();
            for line in img.chunks(CACHELINE) {
                let words: Vec<bool> =
                    line.chunks(8).map(|w| w.iter().all(|&b| b == 0xEE)).collect();
                for w in line.chunks(8) {
                    assert!(
                        w.iter().all(|&b| b == 0xEE) || w.iter().all(|&b| b == 0),
                        "torn inside an 8-byte word"
                    );
                }
                if words.iter().any(|&x| x) && words.iter().any(|&x| !x) {
                    torn_seen = true;
                }
            }
            if torn_seen {
                break;
            }
        }
        assert!(torn_seen, "expected at least one torn line");
        cleanup(&region);
    }

    #[test]
    fn reorder_mode_drops_whole_page_suffix_sometimes() {
        let region = tmp("reorder");
        let len = PAGE * 4;
        write_file(&region, &vec![0u8; len]).unwrap();
        let _sh = ShadowMedia::create(&region, &vec![0u8; len]).unwrap();
        let mut partial_seen = false;
        for seed in 0..64 {
            write_file(&region, &vec![0xCD; len]).unwrap();
            write_file(&sidecar_path(&region), &vec![0u8; len]).unwrap();
            let mut rng = XorShift64Star::new(seed);
            powerloss_crash_file(&region, &mut rng, LossMode::ReorderPages).unwrap();
            let img = std::fs::read(&region).unwrap();
            let live_pages = img
                .chunks(PAGE)
                .filter(|p| p.iter().all(|&b| b == 0xCD))
                .count();
            let dead_pages = img.chunks(PAGE).filter(|p| p.iter().all(|&b| b == 0)).count();
            assert_eq!(live_pages + dead_pages, 4, "pages must be all-or-nothing");
            if live_pages > 0 && dead_pages > 0 {
                partial_seen = true;
                break;
            }
        }
        assert!(partial_seen, "expected a partial page stream at least once");
        cleanup(&region);
    }

    #[test]
    fn remove_sidecar_is_best_effort() {
        let region = tmp("rm");
        write_file(&region, &[0u8; 64]).unwrap();
        let _sh = ShadowMedia::create(&region, &[0u8; 64]).unwrap();
        assert!(sidecar_path(&region).exists());
        remove_sidecar(&region);
        assert!(!sidecar_path(&region).exists());
        remove_sidecar(&region); // second removal: silent no-op
        cleanup(&region);
    }
}
