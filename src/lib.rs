//! Umbrella crate for the HDNH reproduction.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests read naturally; see the individual crates for the
//! real APIs:
//!
//! * [`hdnh`] — the paper's hash table (core contribution).
//! * [`hdnh_common`] — keys/values, hashing, the [`hdnh_common::HashIndex`]
//!   trait.
//! * [`hdnh_nvm`] — the simulated persistent-memory substrate.
//! * [`hdnh_obs`] — process-wide metrics registry (counters, latency
//!   histograms, phase spans) threaded through the core.
//! * [`hdnh_ycsb`] — YCSB-style workload generation.
//! * [`hdnh_baselines`] — Level hashing, CCEH, Path hashing.

pub use hdnh;
pub use hdnh_baselines;
pub use hdnh_common;
pub use hdnh_nvm;
pub use hdnh_obs;
pub use hdnh_ycsb;
