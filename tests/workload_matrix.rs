//! Workload matrix: every YCSB preset × every scheme × several thread
//! counts, with spot value validation. This is the harness-level smoke
//! net: if any scheme mishandles a mix (e.g. upsert semantics, negative
//! reads, rmw), it fails here before it can corrupt a benchmark.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hdnh::{Hdnh, HdnhParams};
use hdnh_baselines::{Cceh, CcehParams, LevelHash, LevelParams, PathHash, PathParams};
use hdnh_common::HashIndex;
use hdnh_ycsb::{generate_ops, KeySpace, Mix, Op, WorkloadSpec};

const PRELOAD: u64 = 2_000;
const OPS_PER_THREAD: usize = 2_500;

fn schemes() -> Vec<Box<dyn HashIndex>> {
    let capacity = PRELOAD as usize + 4 * OPS_PER_THREAD;
    vec![
        Box::new(Hdnh::new(HdnhParams::for_capacity(capacity))) as Box<dyn HashIndex>,
        Box::new(LevelHash::new(LevelParams::for_capacity(capacity))),
        Box::new(Cceh::new(CcehParams::for_capacity(capacity))),
        Box::new(PathHash::new(PathParams::for_capacity(capacity))),
    ]
}

fn mixes() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        ("A", WorkloadSpec::ycsb_a()),
        ("B", WorkloadSpec::ycsb_b()),
        ("C", WorkloadSpec::ycsb_c()),
        ("F", WorkloadSpec::ycsb_f()),
        ("insert", WorkloadSpec::insert_only()),
        ("neg", WorkloadSpec::negative_search_only()),
        ("mix50", WorkloadSpec::mixed_insert_search()),
        ("latest", WorkloadSpec::search_only(Mix::Latest { s: 0.99 })),
    ]
}

/// Executes a stream, validating what can be validated without per-key
/// version tracking (reads must return canonical values for their id).
fn run_stream(idx: &dyn HashIndex, ks: &KeySpace, ops: &[Op], violations: &AtomicUsize) {
    for op in ops {
        match op {
            Op::Read(id) => {
                if let Some(v) = idx.get(&ks.key(*id)) {
                    if ks.validate(*id, &v).is_none() {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Op::ReadAbsent(id) => {
                if idx.get(&ks.negative_key(*id)).is_some() {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
            }
            Op::Insert(id) => {
                let _ = idx.insert(&ks.key(*id), &ks.value(*id, 0));
            }
            Op::Update(id, seq) | Op::ReadModifyWrite(id, seq) => {
                let _ = idx.upsert(&ks.key(*id), &ks.value(*id, *seq));
            }
            Op::Delete(id) => {
                idx.remove(&ks.key(*id));
            }
        }
    }
}

#[test]
fn every_mix_on_every_scheme_single_thread() {
    let ks = KeySpace::default();
    for idx in schemes() {
        for id in 0..PRELOAD {
            idx.insert(&ks.key(id), &ks.value(id, 0)).unwrap();
        }
        for (name, spec) in mixes() {
            let ops = generate_ops(&spec, PRELOAD, PRELOAD + 100_000, OPS_PER_THREAD, 0xA11);
            let violations = AtomicUsize::new(0);
            run_stream(idx.as_ref(), &ks, &ops, &violations);
            assert_eq!(
                violations.load(Ordering::Relaxed),
                0,
                "{} failed mix {name}",
                idx.scheme_name()
            );
        }
    }
}

#[test]
fn ycsb_a_on_every_scheme_multithreaded() {
    let ks = KeySpace::default();
    for idx in schemes() {
        let idx: Arc<Box<dyn HashIndex>> = Arc::new(idx);
        for id in 0..PRELOAD {
            idx.insert(&ks.key(id), &ks.value(id, 0)).unwrap();
        }
        let violations = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let idx = Arc::clone(&idx);
                let violations = Arc::clone(&violations);
                s.spawn(move || {
                    // Note: concurrent upserts of the same id make strict
                    // version checks impossible; validation only checks that
                    // values are *canonical for their id* (torn/foreign
                    // detection), which must hold under any interleaving.
                    let ops = generate_ops(
                        &WorkloadSpec::ycsb_a(),
                        PRELOAD,
                        PRELOAD + t * OPS_PER_THREAD as u64,
                        OPS_PER_THREAD,
                        0xB22 ^ t,
                    );
                    run_stream(idx.as_ref().as_ref(), &ks, &ops, &violations);
                });
            }
        });
        assert_eq!(
            violations.load(Ordering::Relaxed),
            0,
            "{} returned non-canonical values under concurrency",
            idx.scheme_name()
        );
    }
}

#[test]
fn insert_heavy_mix_drives_growth_on_dynamic_schemes() {
    let ks = KeySpace::default();
    for idx in schemes() {
        if idx.scheme_name() == "PATH" {
            continue; // static
        }
        let before = idx.len();
        let ops = generate_ops(
            &WorkloadSpec::insert_only(),
            1,
            10_000_000,
            4 * OPS_PER_THREAD,
            7,
        );
        let violations = AtomicUsize::new(0);
        run_stream(idx.as_ref(), &ks, &ops, &violations);
        assert_eq!(idx.len(), before + 4 * OPS_PER_THREAD, "{}", idx.scheme_name());
    }
}
