//! Randomized crash-consistency tests (invariants I1 and I5 of DESIGN.md).
//!
//! Strict-mode NVM regions track which cachelines were persisted; a
//! simulated crash keeps a random subset of the unflushed ones (torn at
//! 8-byte granularity). These tests crash at many random points and after
//! every resize phase, then verify that recovery reconstructs exactly the
//! acknowledged state.
//!
//! Every scenario prints a `repro:` line to stderr before the crash; the
//! harness replays captured output on failure, so any panic — including
//! internal persistence-lint asserts with no seed in their message — comes
//! with the exact (seed, op index, crash context) needed to re-run it.
//! For crash-*site* level replay use `faultrun repro <tuple>` in the CLI.

use hdnh::{Hdnh, HdnhParams};
use hdnh_common::rng::XorShift64Star;
use hdnh_common::{Key, Value};
use hdnh_nvm::NvmOptions;

fn params() -> HdnhParams {
    HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .nvm(NvmOptions::strict())
        .build()
        .unwrap()
}

fn k(id: u64) -> Key {
    Key::from_u64(id)
}
fn v(x: u64) -> Value {
    Value::from_u64(x)
}

/// Crash after a random prefix of a mixed op sequence: everything
/// acknowledged before the crash must be intact afterwards.
#[test]
fn random_crash_points_preserve_acknowledged_state() {
    for seed in 0..15u64 {
        let mut rng = XorShift64Star::new(seed);
        let t = Hdnh::new(params());
        let mut oracle = std::collections::HashMap::new();
        let n_ops = 200 + (rng.next_u64() % 800) as usize;
        for step in 0..n_ops {
            let id = rng.next_u64() % 600;
            match rng.next_below(10) {
                0..=4 => {
                    if t.insert(&k(id), &v(step as u64)).is_ok() {
                        oracle.insert(id, step as u64);
                    }
                }
                5..=6 => {
                    if t.update(&k(id), &v(step as u64 + 1_000_000)).is_ok() {
                        oracle.insert(id, step as u64 + 1_000_000);
                    }
                }
                7 => {
                    if t.remove(&k(id)).unwrap() {
                        oracle.remove(&id);
                    }
                }
                _ => {
                    assert_eq!(
                        t.get(&k(id)).unwrap().map(|x| x.as_u64()),
                        oracle.get(&id).copied(),
                        "pre-crash divergence at op {step}/{n_ops} id {id} (rng_seed={seed})"
                    );
                }
            }
        }
        let crash_seed = seed.wrapping_mul(0x9E37_79B9);
        let pool = t.into_pool();
        let dropped = pool.crash(crash_seed);
        eprintln!(
            "repro: random_crash_points rng_seed={seed} n_ops={n_ops} \
             crash_seed={crash_seed} dropped_words={dropped}"
        );
        let r = Hdnh::recover(params(), pool, 2);
        assert_eq!(
            r.len(),
            oracle.len(),
            "live count after recovery (rng_seed={seed} n_ops={n_ops} crash_seed={crash_seed})"
        );
        for (&id, &val) in &oracle {
            assert_eq!(
                r.get(&k(id)).unwrap().map(|x| x.as_u64()),
                Some(val),
                "id {id} (rng_seed={seed} n_ops={n_ops} crash_seed={crash_seed})"
            );
        }
    }
}

/// Crash at every possible rehash cursor position.
#[test]
fn crash_at_every_rehash_cursor() {
    let probe = Hdnh::new(params());
    for i in 0..300u64 {
        probe.insert(&k(i), &v(i)).unwrap();
    }
    let buckets = {
        // Bottom-level bucket count drives the cursor range.
        let pool = probe.into_pool();
        let r = Hdnh::recover(params(), pool, 1);
        let n = r.meta_bottom_buckets();
        drop(r);
        n
    };
    for stop in 0..=buckets {
        let t = Hdnh::new(params());
        for i in 0..300u64 {
            t.insert(&k(i), &v(i * 2 + 1)).unwrap();
        }
        let pool = t.into_crashed_mid_resize(stop);
        let dropped = pool.crash(stop as u64);
        eprintln!(
            "repro: rehash_cursor crash at rehash cursor {stop}/{buckets} \
             crash_seed={stop} dropped_words={dropped}"
        );
        let r = Hdnh::recover(params(), pool, 2);
        assert_eq!(r.len(), 300, "live count (rehash cursor {stop}, crash_seed={stop})");
        for i in 0..300u64 {
            assert_eq!(
                r.get(&k(i)).unwrap().unwrap().as_u64(),
                i * 2 + 1,
                "key {i} (rehash cursor {stop}, crash_seed={stop})"
            );
        }
    }
}

/// Double-crash: crash during recovery's own resize completion, then
/// recover again (recovery must itself be crash-consistent).
#[test]
fn crash_then_crash_again_during_recovered_state() {
    let t = Hdnh::new(params());
    for i in 0..400u64 {
        t.insert(&k(i), &v(i)).unwrap();
    }
    let pool = t.into_crashed_mid_resize(2);
    let dropped = pool.crash(1);
    eprintln!("repro: double_crash first crash at rehash cursor 2, crash_seed=1, dropped_words={dropped}");
    let r = Hdnh::recover(params(), pool, 2);
    assert_eq!(r.len(), 400, "after first recovery");
    // Crash the *recovered* table immediately.
    let pool = r.into_pool();
    let dropped = pool.crash(2);
    eprintln!("repro: double_crash second crash of recovered table, crash_seed=2, dropped_words={dropped}");
    let r2 = Hdnh::recover(params(), pool, 2);
    assert_eq!(r2.len(), 400, "after second recovery");
    for i in 0..400u64 {
        assert_eq!(r2.get(&k(i)).unwrap().unwrap().as_u64(), i, "key {i} after second recovery");
    }
}

/// Repeated crash/recover cycles with work in between.
#[test]
fn survives_many_crash_cycles() {
    let mut expected: std::collections::HashMap<u64, u64> = Default::default();
    let mut t = Hdnh::new(params());
    for cycle in 0..8u64 {
        let base = cycle * 1_000;
        for i in 0..150 {
            let id = base + i;
            t.insert(&k(id), &v(id ^ cycle)).unwrap();
            expected.insert(id, id ^ cycle);
        }
        // Update a slice of older keys.
        if cycle > 0 {
            for i in 0..50 {
                let id = (cycle - 1) * 1_000 + i;
                t.update(&k(id), &v(id + 7)).unwrap();
                expected.insert(id, id + 7);
            }
        }
        let pool = t.into_pool();
        let crash_seed = 0xC0FFEE + cycle;
        let dropped = pool.crash(crash_seed);
        eprintln!("repro: crash_cycles cycle={cycle} crash_seed={crash_seed:#x} dropped_words={dropped}");
        t = Hdnh::recover(params(), pool, 2);
        assert_eq!(
            t.len(),
            expected.len(),
            "live count (cycle {cycle}, crash_seed={crash_seed:#x})"
        );
        for (&id, &val) in &expected {
            assert_eq!(
                t.get(&k(id)).unwrap().map(|x| x.as_u64()),
                Some(val),
                "id {id} (cycle {cycle}, crash_seed={crash_seed:#x})"
            );
        }
    }
}

/// The update fallback window (new copy committed, old not yet cleared)
/// must be healed by recovery's deduplication: never two values for one
/// key, and the surviving value is one of the two written.
#[test]
fn update_crash_window_deduplicates() {
    for seed in 0..10u64 {
        let t = Hdnh::new(params());
        for i in 0..200u64 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        for i in 0..200u64 {
            t.update(&k(i), &v(i + 500)).unwrap();
        }
        let pool = t.into_pool();
        let crash_seed = seed + 77;
        let dropped = pool.crash(crash_seed);
        eprintln!("repro: update_window crash after 200 updates, crash_seed={crash_seed} dropped_words={dropped}");
        let r = Hdnh::recover(params(), pool, 2);
        assert_eq!(r.len(), 200, "live count (crash_seed={crash_seed})");
        for i in 0..200u64 {
            let got = r.get(&k(i)).unwrap().unwrap().as_u64();
            assert_eq!(
                got,
                i + 500,
                "id {i}: update was acknowledged (crash_seed={crash_seed})"
            );
        }
    }
}
