//! Randomized crash-consistency tests (invariants I1 and I5 of DESIGN.md).
//!
//! Strict-mode NVM regions track which cachelines were persisted; a
//! simulated crash keeps a random subset of the unflushed ones (torn at
//! 8-byte granularity). These tests crash at many random points and after
//! every resize phase, then verify that recovery reconstructs exactly the
//! acknowledged state.

use hdnh::{Hdnh, HdnhParams};
use hdnh_common::rng::XorShift64Star;
use hdnh_common::{Key, Value};
use hdnh_nvm::NvmOptions;

fn params() -> HdnhParams {
    HdnhParams {
        segment_bytes: 1024,
        initial_bottom_segments: 2,
        nvm: NvmOptions::strict(),
        ..Default::default()
    }
}

fn k(id: u64) -> Key {
    Key::from_u64(id)
}
fn v(x: u64) -> Value {
    Value::from_u64(x)
}

/// Crash after a random prefix of a mixed op sequence: everything
/// acknowledged before the crash must be intact afterwards.
#[test]
fn random_crash_points_preserve_acknowledged_state() {
    for seed in 0..15u64 {
        let mut rng = XorShift64Star::new(seed);
        let t = Hdnh::new(params());
        let mut oracle = std::collections::HashMap::new();
        let n_ops = 200 + (rng.next_u64() % 800) as usize;
        for step in 0..n_ops {
            let id = rng.next_u64() % 600;
            match rng.next_below(10) {
                0..=4 => {
                    if t.insert(&k(id), &v(step as u64)).is_ok() {
                        oracle.insert(id, step as u64);
                    }
                }
                5..=6 => {
                    if t.update(&k(id), &v(step as u64 + 1_000_000)).is_ok() {
                        oracle.insert(id, step as u64 + 1_000_000);
                    }
                }
                7 => {
                    if t.remove(&k(id)) {
                        oracle.remove(&id);
                    }
                }
                _ => {
                    assert_eq!(
                        t.get(&k(id)).map(|x| x.as_u64()),
                        oracle.get(&id).copied(),
                        "pre-crash divergence (seed {seed})"
                    );
                }
            }
        }
        let pool = t.into_pool();
        pool.crash(seed.wrapping_mul(0x9E37_79B9));
        let r = Hdnh::recover(params(), pool, 2);
        assert_eq!(r.len(), oracle.len(), "seed {seed}");
        for (&id, &val) in &oracle {
            assert_eq!(
                r.get(&k(id)).map(|x| x.as_u64()),
                Some(val),
                "seed {seed} id {id}"
            );
        }
    }
}

/// Crash at every possible rehash cursor position.
#[test]
fn crash_at_every_rehash_cursor() {
    let probe = Hdnh::new(params());
    for i in 0..300u64 {
        probe.insert(&k(i), &v(i)).unwrap();
    }
    let buckets = {
        // Bottom-level bucket count drives the cursor range.
        let pool = probe.into_pool();
        let r = Hdnh::recover(params(), pool, 1);
        let n = r.meta_bottom_buckets();
        drop(r);
        n
    };
    for stop in 0..=buckets {
        let t = Hdnh::new(params());
        for i in 0..300u64 {
            t.insert(&k(i), &v(i * 2 + 1)).unwrap();
        }
        let pool = t.into_crashed_mid_resize(stop);
        pool.crash(stop as u64);
        let r = Hdnh::recover(params(), pool, 2);
        assert_eq!(r.len(), 300, "stop {stop}");
        for i in 0..300u64 {
            assert_eq!(r.get(&k(i)).unwrap().as_u64(), i * 2 + 1, "stop {stop} key {i}");
        }
    }
}

/// Double-crash: crash during recovery's own resize completion, then
/// recover again (recovery must itself be crash-consistent).
#[test]
fn crash_then_crash_again_during_recovered_state() {
    let t = Hdnh::new(params());
    for i in 0..400u64 {
        t.insert(&k(i), &v(i)).unwrap();
    }
    let pool = t.into_crashed_mid_resize(2);
    pool.crash(1);
    let r = Hdnh::recover(params(), pool, 2);
    assert_eq!(r.len(), 400);
    // Crash the *recovered* table immediately.
    let pool = r.into_pool();
    pool.crash(2);
    let r2 = Hdnh::recover(params(), pool, 2);
    assert_eq!(r2.len(), 400);
    for i in 0..400u64 {
        assert_eq!(r2.get(&k(i)).unwrap().as_u64(), i);
    }
}

/// Repeated crash/recover cycles with work in between.
#[test]
fn survives_many_crash_cycles() {
    let mut expected: std::collections::HashMap<u64, u64> = Default::default();
    let mut t = Hdnh::new(params());
    for cycle in 0..8u64 {
        let base = cycle * 1_000;
        for i in 0..150 {
            let id = base + i;
            t.insert(&k(id), &v(id ^ cycle)).unwrap();
            expected.insert(id, id ^ cycle);
        }
        // Update a slice of older keys.
        if cycle > 0 {
            for i in 0..50 {
                let id = (cycle - 1) * 1_000 + i;
                t.update(&k(id), &v(id + 7)).unwrap();
                expected.insert(id, id + 7);
            }
        }
        let pool = t.into_pool();
        pool.crash(0xC0FFEE + cycle);
        t = Hdnh::recover(params(), pool, 2);
        assert_eq!(t.len(), expected.len(), "cycle {cycle}");
        for (&id, &val) in &expected {
            assert_eq!(t.get(&k(id)).map(|x| x.as_u64()), Some(val), "cycle {cycle} id {id}");
        }
    }
}

/// The update fallback window (new copy committed, old not yet cleared)
/// must be healed by recovery's deduplication: never two values for one
/// key, and the surviving value is one of the two written.
#[test]
fn update_crash_window_deduplicates() {
    for seed in 0..10u64 {
        let t = Hdnh::new(params());
        for i in 0..200u64 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        for i in 0..200u64 {
            t.update(&k(i), &v(i + 500)).unwrap();
        }
        let pool = t.into_pool();
        pool.crash(seed + 77);
        let r = Hdnh::recover(params(), pool, 2);
        assert_eq!(r.len(), 200, "seed {seed}");
        for i in 0..200u64 {
            let got = r.get(&k(i)).unwrap().as_u64();
            assert_eq!(got, i + 500, "seed {seed} id {i}: update was acknowledged");
        }
    }
}
