//! Randomized torn-persistence matrix (the power-loss acceptance test).
//!
//! Each schedule drives a file-backed pool under `SyncPolicy::Sync` with
//! shadow-persistence tracking, injects a crash at a randomly chosen
//! `(site, hit)` **mid-operation** — the only moment a correctly fenced
//! store has unfenced lines — then "pulls the plug": every region file is
//! put through [`hdnh_nvm::powerloss_crash_file`], which drops, tears or
//! reorders every cacheline not covered by a completed blocking msync.
//! The pool must reopen through the full `open_pool` recovery path with
//! **zero acked write loss** and no integrity violations.
//!
//! Knobs (for CI and local tuning):
//! - `HDNH_POWERLOSS_SCHEDULES=N` overrides the schedule count
//!   (default 200 in release builds, 48 in debug builds).
//! - `HDNH_POWERLOSS_REPORT=path` writes a JSON summary of the matrix,
//!   uploaded as a CI artifact by the `powerloss-smoke` job.

#![cfg(unix)]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;

use hdnh::faultexplore::{record_sites_pool, run_single_pool, OpMix};
use hdnh::Hdnh;
use hdnh_common::rng::XorShift64Star;
use hdnh_common::{Key, Value};
use hdnh_nvm::{powerloss_crash_file, FaultPlan, LossMode, SyncPolicy};

/// The fail-point registry is process-global and the torn matrix arms it;
/// both tests in this binary take the gate so a plan armed by one cannot
/// fire inside the other's table operations.
static FAULT_REGISTRY_GATE: Mutex<()> = Mutex::new(());

fn tmp_pool(tag: &str, n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdnh-powerloss-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn schedule_count() -> usize {
    if let Ok(v) = std::env::var("HDNH_POWERLOSS_SCHEDULES") {
        return v
            .parse()
            .unwrap_or_else(|_| panic!("HDNH_POWERLOSS_SCHEDULES must be a number, got {v:?}"));
    }
    if cfg!(debug_assertions) {
        48
    } else {
        200
    }
}

#[test]
fn torn_persistence_schedules_lose_no_acked_write() {
    let _gate = FAULT_REGISTRY_GATE.lock().unwrap();
    let schedules = schedule_count();
    let mixes = OpMix::builtin();

    // One recording pass per mix: the site population on the pool backend
    // (msync paths fire, strict-mode paths do not), with total hit counts.
    let site_tables: Vec<Vec<(&'static str, u64)>> = mixes
        .iter()
        .map(|mix| {
            let counts = record_sites_pool(mix)
                .unwrap_or_else(|e| panic!("pool site recording failed for {}: {e}", mix.name));
            assert!(!counts.is_empty(), "no sites recorded for mix {}", mix.name);
            counts.into_iter().collect()
        })
        .collect();

    let mut rng = XorShift64Star::new(0x0DDB_A11C_0FFE_E000);
    let mut per_mode: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut effective = 0usize;
    let mut vacuous = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for s in 0..schedules {
        let mi = s % mixes.len();
        let sites = &site_tables[mi];
        let (site, hits) = sites[rng.next_below(sites.len() as u32) as usize];
        let plan = FaultPlan {
            site: site.to_string(),
            hit: 1 + rng.next_u64() % hits,
        };
        let seed = s as u64;
        let r = run_single_pool(&mixes[mi], &plan, seed, 2);
        *per_mode.entry(LossMode::from_seed(seed).name()).or_default() += 1;
        if !r.pass {
            failures.push(format!("  {} :: {}", r.repro(), r.detail));
        } else if r.detail.is_empty() {
            // Crash fired mid-op and recovery satisfied the oracle.
            effective += 1;
        } else {
            // "site/hit not reached" or "crash during pool creation".
            vacuous += 1;
        }
        if (s + 1).is_multiple_of(50) {
            eprintln!("... {}/{schedules} schedules, {effective} effective", s + 1);
        }
    }

    assert!(
        failures.is_empty(),
        "{} of {schedules} schedules lost acked writes or broke invariants:\n{}",
        failures.len(),
        failures.join("\n")
    );
    // The sweep must actually exercise the failure model: all three loss
    // modes ran, and most schedules genuinely crashed mid-op (a vacuous
    // pass means the sampled hit was never reached).
    assert_eq!(per_mode.len(), 3, "loss modes covered: {per_mode:?}");
    assert!(
        effective * 2 >= schedules,
        "only {effective}/{schedules} schedules crashed mid-op ({vacuous} vacuous)"
    );

    if let Ok(path) = std::env::var("HDNH_POWERLOSS_REPORT") {
        let modes = per_mode
            .iter()
            .map(|(m, n)| format!("\"{m}\":{n}"))
            .collect::<Vec<_>>()
            .join(",");
        let json = format!(
            "{{\"schedules\":{schedules},\"modes\":{{{modes}}},\
             \"effective\":{effective},\"vacuous\":{vacuous},\
             \"acked_writes_lost\":0,\"failures\":0}}\n"
        );
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("powerloss report written to {path}");
    }
}

/// The flip side, documenting *why* `--sync-policy sync` exists: under the
/// default `Async` policy acks are returned before the data is fenced to
/// media, so a power cut can destroy acknowledged writes. This test
/// demonstrates at least one such loss across a handful of fixed seeds —
/// if Async ever became loss-free here, the shadow model (or the policy
/// plumbing) is broken and the sync-policy docs are lies.
#[test]
fn async_policy_demonstrably_loses_acked_writes() {
    let _gate = FAULT_REGISTRY_GATE.lock().unwrap();
    let mut demonstrated = false;
    for seed in 0..6u64 {
        let dir = tmp_pool("async", seed as usize);
        let mut params = hdnh::faultexplore::explore_pool_params();
        params.nvm.sync_policy = SyncPolicy::Async;

        let (table, _) = Hdnh::open_pool(params.clone(), &dir, 1).unwrap();
        let mut model = BTreeMap::new();
        let mut rng = XorShift64Star::new(seed.wrapping_mul(0xA076_1D64_78BD_642F) | 1);
        for _ in 0..200 {
            let k = u64::from(rng.next_below(512));
            let v = rng.next_u64() | 1;
            if model.contains_key(&k) {
                table
                    .update(&Key::from_u64(k), &Value::from_u64(v))
                    .expect("acked update");
            } else {
                table
                    .insert(&Key::from_u64(k), &Value::from_u64(v))
                    .expect("acked insert");
            }
            model.insert(k, v);
        }
        drop(table);

        let mode = LossMode::from_seed(seed);
        let mut crash_rng = XorShift64Star::new(seed ^ 0x2545_F491_4F6C_DD1D);
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let p = entry.path();
            if p.extension().and_then(|e| e.to_str()) == Some("dat") {
                powerloss_crash_file(&p, &mut crash_rng, mode).unwrap();
            }
        }

        // Under Async the pool violates the ADR contract, so recovery may
        // legitimately fail, panic, or come back with holes. Any of those
        // outcomes demonstrates the loss.
        let lossy = match std::panic::catch_unwind(|| {
            let (table, _) = Hdnh::open_pool(params.clone(), &dir, 2)?;
            let mut missing = 0usize;
            for (k, v) in &model {
                match table.get(&Key::from_u64(*k)) {
                    Ok(Some(got)) if got.as_u64() == *v => {}
                    _ => missing += 1,
                }
            }
            Ok::<usize, hdnh::HdnhError>(missing)
        }) {
            Ok(Ok(0)) => false,
            Ok(Ok(_)) | Ok(Err(_)) | Err(_) => true,
        };
        let _ = std::fs::remove_dir_all(&dir);
        if lossy {
            demonstrated = true;
            break;
        }
    }
    assert!(
        demonstrated,
        "async sync policy survived every power cut — the shadow model is \
         not tracking unfenced msync, or the policy knob is not wired"
    );
}
