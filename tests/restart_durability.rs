//! Restart durability for the file-backed pool backend: a table opened on
//! a pool directory must come back after a drop (dirty reopen → recovery)
//! and after a clean close (clean reopen → no recovery), including across
//! resizes, and a damaged superblock must never open clean.

#![cfg(unix)]
#![allow(clippy::needless_update)]

use std::path::PathBuf;

use hdnh::{Hdnh, HdnhError, HdnhParams};
use hdnh_common::{Key, Value};
use hdnh_nvm::NvmOptions;
use proptest::prelude::*;

fn tmp_pool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdnh-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn params(capacity: usize) -> HdnhParams {
    HdnhParams::builder().capacity(capacity).build().unwrap()
}

fn fill(table: &Hdnh, range: std::ops::Range<u64>) {
    for id in range {
        table
            .insert(&Key::from_u64(id), &Value::from_u64(id * 3 + 1))
            .unwrap_or_else(|e| panic!("insert {id}: {e}"));
    }
}

fn check(table: &Hdnh, range: std::ops::Range<u64>) {
    for id in range {
        let got = table.get(&Key::from_u64(id)).unwrap().map(|v| v.as_u64());
        assert_eq!(got, Some(id * 3 + 1), "key {id} wrong after reopen");
    }
}

#[test]
fn clean_close_then_reopen_skips_recovery_and_keeps_data() {
    let dir = tmp_pool("clean");
    let (table, report) = Hdnh::open_pool(params(5_000), &dir, 2).unwrap();
    assert!(report.created);
    fill(&table, 0..1_000);
    table.close_pool().unwrap();

    let (table, report) = Hdnh::open_pool(params(5_000), &dir, 2).unwrap();
    assert!(!report.created);
    assert!(report.was_clean, "clean close must set the clean flag");
    assert_eq!(table.len(), 1_000);
    check(&table, 0..1_000);
    let (reports, live) = table.verify_integrity_report();
    assert_eq!(live, 1_000);
    assert!(reports.iter().all(|r| r.ok), "{reports:?}");
    table.close_pool().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropped_table_reopens_dirty_and_recovers_every_record() {
    let dir = tmp_pool("dirty");
    let (table, _) = Hdnh::open_pool(params(5_000), &dir, 2).unwrap();
    fill(&table, 0..1_500);
    // Simulated kill: no close_pool, the superblock stays dirty.
    drop(table);

    let (table, report) = Hdnh::open_pool(params(5_000), &dir, 2).unwrap();
    assert!(!report.was_clean, "a dropped pool must reopen via recovery");
    assert_eq!(table.len(), 1_500);
    check(&table, 0..1_500);
    let scrub = table.scrub();
    assert!(scrub.clean(), "{scrub:?}");
    table.close_pool().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resize_survives_both_clean_and_dirty_reopen() {
    let dir = tmp_pool("resize");
    let (table, _) = Hdnh::open_pool(params(1_000), &dir, 2).unwrap();
    // Overfill well past the initial capacity to force at least one resize.
    fill(&table, 0..6_000);
    assert!(table.resize_count() > 0, "test did not trigger a resize");
    table.close_pool().unwrap();

    let (table, report) = Hdnh::open_pool(params(1_000), &dir, 2).unwrap();
    assert!(report.was_clean);
    check(&table, 0..6_000);
    // Grow again, then crash-drop on the post-resize geometry.
    fill(&table, 6_000..9_000);
    drop(table);

    let (table, report) = Hdnh::open_pool(params(1_000), &dir, 2).unwrap();
    assert!(!report.was_clean);
    assert_eq!(table.len(), 9_000);
    check(&table, 0..9_000);
    table.close_pool().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Variable-length values across restarts: inline and spilled payloads
/// (up to the 64 KiB acceptance size) survive a clean close, a compaction,
/// and a dirty reopen's recovery, byte-identical.
#[test]
fn spilled_values_survive_clean_and_dirty_reopen() {
    let dir = tmp_pool("vlog");
    let payload = |id: u64| -> Vec<u8> {
        let n = match id % 4 {
            0 => 8, // inline
            1 => 100,
            2 => 4096,
            _ => 64 * 1024,
        };
        (0..n).map(|i| (id as usize * 31 + i * 7) as u8).collect()
    };
    // After the writes below: keys 0..100 overwritten, 150..170 removed.
    let expected = |id: u64| -> Option<Vec<u8>> {
        if (150..170).contains(&id) {
            None
        } else if id < 100 {
            Some(payload(id + 1000))
        } else {
            Some(payload(id))
        }
    };

    let (table, _) = Hdnh::open_pool(params(5_000), &dir, 2).unwrap();
    for id in 0..200u64 {
        table.insert_bytes(&Key::from_u64(id), &payload(id)).unwrap();
    }
    for id in 0..100u64 {
        // `id + 1000` keeps the size class (1000 % 4 == 0) but changes
        // every byte, so a stale read cannot pass by length alone.
        table.update_bytes(&Key::from_u64(id), &payload(id + 1000)).unwrap();
    }
    for id in 150..170u64 {
        assert!(table.remove(&Key::from_u64(id)).unwrap());
    }
    table.close_pool().unwrap();

    // Clean reopen: no recovery, every byte back.
    let (table, report) = Hdnh::open_pool(params(5_000), &dir, 2).unwrap();
    assert!(report.was_clean, "clean close must set the clean flag");
    for id in 0..200u64 {
        assert_eq!(
            table.get_bytes(&Key::from_u64(id)).unwrap(),
            expected(id),
            "key {id} after clean reopen"
        );
    }

    // Compact (the overwrites and removes left garbage), then pull the
    // plug: a dirty reopen must rebuild the log accounting from the
    // surviving segments and still serve every byte.
    let gc = table.compact().unwrap();
    assert!(gc.bytes_reclaimed > 0, "{gc:?}");
    for id in 0..200u64 {
        assert_eq!(
            table.get_bytes(&Key::from_u64(id)).unwrap(),
            expected(id),
            "key {id} after compaction"
        );
    }
    drop(table);

    let (table, report) = Hdnh::open_pool(params(5_000), &dir, 2).unwrap();
    assert!(!report.was_clean, "dropped table must reopen dirty");
    for id in 0..200u64 {
        assert_eq!(
            table.get_bytes(&Key::from_u64(id)).unwrap(),
            expected(id),
            "key {id} after dirty reopen"
        );
    }
    let (reports, _) = table.verify_integrity_report();
    assert!(reports.iter().all(|r| r.ok), "{reports:?}");
    table.close_pool().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn strict_mode_cannot_open_a_pool() {
    let dir = tmp_pool("strict");
    let p = HdnhParams::builder()
        .capacity(1_000)
        .nvm(NvmOptions::strict())
        .build()
        .unwrap();
    match Hdnh::open_pool(p, &dir, 2) {
        Err(HdnhError::Config(msg)) => assert!(msg.contains("strict"), "{msg}"),
        other => panic!("strict+pool must be a Config error, got {other:?}"),
    }
    assert!(!dir.exists(), "rejected open must not create the pool directory");
}

/// Shared fixture for the superblock-damage property: the pool directory
/// and its pristine superblock bytes (the shim's `proptest!` expands to a
/// plain fn, which cannot capture locals).
static SB_CTX: std::sync::OnceLock<(PathBuf, Vec<u8>)> = std::sync::OnceLock::new();

/// A pool whose superblock is damaged — any single bit flip or any
/// truncation — must fail to open with a typed error, never open clean.
#[test]
fn damaged_superblock_never_opens() {
    let dir = tmp_pool("sbdamage");
    let (table, _) = Hdnh::open_pool(params(2_000), &dir, 2).unwrap();
    fill(&table, 0..100);
    table.close_pool().unwrap();
    let sb_path = dir.join(hdnh::SUPERBLOCK_FILE);
    let pristine = std::fs::read(&sb_path).unwrap();
    SB_CTX.set((dir.clone(), pristine.clone())).unwrap();

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
        fn damage_case(bit in 0usize..(64 * 8), cut in 0usize..64) {
            let (dir, pristine) = SB_CTX.get().unwrap();
            let sb_path = dir.join(hdnh::SUPERBLOCK_FILE);
            // Bit flip.
            let mut bytes = pristine.clone();
            bytes[bit / 8] ^= 1 << (bit % 8);
            std::fs::write(&sb_path, &bytes).unwrap();
            prop_assert!(
                Hdnh::open_pool(params(2_000), dir, 2).is_err(),
                "bit {bit} flip opened anyway"
            );
            // Truncation.
            std::fs::write(&sb_path, &pristine[..cut]).unwrap();
            prop_assert!(
                Hdnh::open_pool(params(2_000), dir, 2).is_err(),
                "truncation to {cut} bytes opened anyway"
            );
            std::fs::write(&sb_path, pristine).unwrap();
        }
    }
    damage_case();

    // The pristine superblock still opens (damage was the only problem).
    let (table, report) = Hdnh::open_pool(params(2_000), &dir, 2).unwrap();
    assert!(report.was_clean);
    check(&table, 0..100);
    table.close_pool().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fixture for the mismatch property below (same OnceLock workaround).
static MM_CTX: std::sync::OnceLock<(PathBuf, Vec<u8>)> = std::sync::OnceLock::new();

/// A *CRC-valid* superblock whose version or `segment_bytes` disagrees
/// with this build/these params must be rejected with a typed
/// `HdnhError::Recovery` — never a panic, never a size-classification
/// abort deeper in recovery. (The CRC is re-sealed after each patch, so
/// only the semantic checks can reject these blocks.)
#[test]
fn mismatched_superblock_rejected_with_typed_error() {
    let dir = tmp_pool("sbmismatch");
    let (table, _) = Hdnh::open_pool(params(2_000), &dir, 2).unwrap();
    fill(&table, 0..50);
    table.close_pool().unwrap();
    let sb_path = dir.join(hdnh::SUPERBLOCK_FILE);
    let pristine = std::fs::read(&sb_path).unwrap();
    MM_CTX.set((dir.clone(), pristine.clone())).unwrap();

    fn reseal(bytes: &mut [u8]) {
        let crc = hdnh::crc32_ieee(&bytes[..60]);
        bytes[60..64].copy_from_slice(&crc.to_le_bytes());
    }
    fn open_is_typed_recovery(dir: &std::path::Path) -> Result<(), String> {
        let dir = dir.to_path_buf();
        match std::panic::catch_unwind(move || Hdnh::open_pool(params(2_000), &dir, 2)) {
            Err(_) => Err("open panicked".into()),
            Ok(Ok(_)) => Err("mismatched superblock opened anyway".into()),
            Ok(Err(HdnhError::Recovery(_))) => Ok(()),
            Ok(Err(other)) => Err(format!("expected Recovery error, got {other:?}")),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
        fn mismatch_case(version in 0u32..1_000_000, seg_shift in 1u64..16, add in 1u64..4096) {
            let (dir, pristine) = MM_CTX.get().unwrap();
            let sb_path = dir.join(hdnh::SUPERBLOCK_FILE);
            let real_seg = u64::from_le_bytes(pristine[16..24].try_into().unwrap());

            // Wrong version, CRC valid.
            if version != 1 {
                let mut bytes = pristine.clone();
                bytes[8..12].copy_from_slice(&version.to_le_bytes());
                reseal(&mut bytes);
                std::fs::write(&sb_path, &bytes).unwrap();
                prop_assert!(open_is_typed_recovery(dir).is_ok(),
                    "version {version}: {:?}", open_is_typed_recovery(dir));
            }

            // Wrong segment_bytes (both power-of-two-ish shifts and odd
            // offsets), CRC valid.
            for wrong in [real_seg << seg_shift, real_seg + add] {
                if wrong == real_seg {
                    continue;
                }
                let mut bytes = pristine.clone();
                bytes[16..24].copy_from_slice(&wrong.to_le_bytes());
                reseal(&mut bytes);
                std::fs::write(&sb_path, &bytes).unwrap();
                prop_assert!(open_is_typed_recovery(dir).is_ok(),
                    "segment_bytes {wrong}: {:?}", open_is_typed_recovery(dir));
            }
            std::fs::write(&sb_path, pristine).unwrap();
        }
    }
    mismatch_case();

    // Params that disagree with an honest superblock are typed too.
    let bad_params = HdnhParams {
        segment_bytes: params(2_000).segment_bytes * 2,
        ..params(2_000)
    };
    match Hdnh::open_pool(bad_params, &dir, 2) {
        Err(HdnhError::Recovery(msg)) => {
            assert!(msg.contains("segment_bytes"), "{msg}");
        }
        other => panic!("expected Recovery error, got {other:?}"),
    }

    let (table, _) = Hdnh::open_pool(params(2_000), &dir, 2).unwrap();
    check(&table, 0..50);
    table.close_pool().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
