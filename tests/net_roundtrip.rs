//! End-to-end tests for the network service layer: a real `hdnh-server`
//! on a loopback port, driven through `RespClient` (and raw sockets for
//! the protocol-violation cases).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hdnh::{Hdnh, HdnhParams};
use hdnh_server::{start, Reply, RespClient, ServerConfig};

fn spawn_server(cfg: ServerConfig) -> (hdnh_server::ServerHandle, String) {
    let params = HdnhParams::builder()
        .capacity(10_000)
        .build()
        .expect("default test params are valid");
    let table = Arc::new(Hdnh::new(params));
    let handle = start(table, "127.0.0.1:0", cfg).expect("bind loopback");
    let addr = handle.local_addr().to_string();
    (handle, addr)
}

/// Like [`spawn_server`] but also hands back the table so tests can
/// assert on storage-side effects (e.g. value-log occupancy).
fn spawn_server_with_table(cfg: ServerConfig) -> (hdnh_server::ServerHandle, String, Arc<Hdnh>) {
    let params = HdnhParams::builder()
        .capacity(10_000)
        .build()
        .expect("default test params are valid");
    let table = Arc::new(Hdnh::new(params));
    let handle = start(Arc::clone(&table), "127.0.0.1:0", cfg).expect("bind loopback");
    let addr = handle.local_addr().to_string();
    (handle, addr, table)
}

fn client(addr: &str) -> RespClient {
    let c = RespClient::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    c
}

#[test]
fn crud_over_the_wire() {
    let (handle, addr) = spawn_server(ServerConfig::default());
    let mut c = client(&addr);

    assert!(c.ping().unwrap());
    assert_eq!(c.call(&[b"PING", b"hello"]).unwrap(), Reply::Bulk(b"hello".to_vec()));

    assert_eq!(c.set(17, 42).unwrap(), Ok(()));
    assert_eq!(c.get(17).unwrap(), Some(42));
    assert_eq!(c.get(18).unwrap(), None);
    assert!(c.exists(17).unwrap());
    assert!(!c.exists(18).unwrap());

    // SET is an upsert: overwriting is not an error.
    assert_eq!(c.set(17, 43).unwrap(), Ok(()));
    assert_eq!(c.get(17).unwrap(), Some(43));

    assert_eq!(c.call(&[b"MSET", b"1", b"10", b"2", b"20"]).unwrap(), Reply::Simple("OK".into()));
    assert_eq!(
        c.mget(&[1, 2, 3]).unwrap(),
        vec![Some(10), Some(20), None]
    );

    assert_eq!(c.call(&[b"DEL", b"1", b"2", b"3"]).unwrap(), Reply::Int(2));
    assert!(!c.exists(1).unwrap());
    assert!(c.del(17).unwrap());
    assert!(!c.del(17).unwrap());

    let info = c.info().unwrap();
    assert!(info.contains("records:0"), "{info}");

    handle.shutdown_and_join();
}

#[test]
fn command_errors_keep_the_connection_usable() {
    let (handle, addr) = spawn_server(ServerConfig::default());
    let mut c = client(&addr);

    // Unknown command, bad arity, and non-integer keys are command-level
    // errors: the reply is `-ERR ...` and the connection stays open.
    for req in [
        &[b"FROB".as_slice()] as &[&[u8]],
        &[b"GET"],
        &[b"GET", b"1", b"2"],
        &[b"GET", b"xyz"],
        &[b"SET", b"1"],
        &[b"MSET", b"1", b"2", b"3"],
        &[b"METRICS", b"xml"],
    ] {
        match c.call(req).unwrap() {
            Reply::Error(e) => assert!(e.starts_with("ERR"), "{e}"),
            other => panic!("expected error for {req:?}, got {other:?}"),
        }
    }
    assert!(c.ping().unwrap(), "connection must survive command errors");

    handle.shutdown_and_join();
}

#[test]
fn pipelined_batch_replies_in_order() {
    let (handle, addr) = spawn_server(
        ServerConfig::builder()
            .max_inflight(32) // force several backpressure stalls within the batch
            .build()
            .unwrap(),
    );
    let mut c = client(&addr);

    let n = 200u64;
    for i in 0..n {
        c.cmd(&[b"SET", i.to_string().as_bytes(), (i * 3).to_string().as_bytes()]);
    }
    for i in 0..n {
        c.cmd(&[b"GET", i.to_string().as_bytes()]);
    }
    c.flush().unwrap();
    for _ in 0..n {
        assert!(c.read_reply().unwrap().is_ok());
    }
    for i in 0..n {
        let r = c.read_reply().unwrap();
        assert_eq!(r.as_u64(), Some(i * 3), "reply order must match request order");
    }

    handle.shutdown_and_join();
}

#[test]
fn connections_over_the_budget_are_rejected() {
    let (handle, addr) = spawn_server(ServerConfig::builder().threads(2).max_conns(1).build().unwrap());

    let mut a = client(&addr);
    assert!(a.ping().unwrap());

    // The slot is taken: the next connection gets an error and EOF.
    let mut b = client(&addr);
    match b.read_reply() {
        Ok(Reply::Error(e)) => assert!(e.contains("max connections"), "{e}"),
        other => panic!("expected rejection error, got {other:?}"),
    }
    assert!(
        b.read_reply().is_err(),
        "rejected connection must be closed after the error"
    );

    // Releasing the slot admits a new connection. The release happens
    // when the worker serving `a` notices the EOF, so retry briefly: a
    // probe that still hits the budget gets the rejection as its "ping"
    // reply (→ not PONG) and tries again.
    drop(a);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut c = client(&addr);
        match c.ping() {
            Ok(true) => break,
            r if std::time::Instant::now() < deadline => {
                let _ = r;
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("ping after slot release failed: {other:?}"),
        }
    }

    handle.shutdown_and_join();
}

#[test]
fn graceful_drain_answers_every_pipelined_frame() {
    let (handle, addr) = spawn_server(ServerConfig::default());
    let mut c = client(&addr);

    // SHUTDOWN rides in the middle of a pipelined burst: every frame in
    // the burst — including those after SHUTDOWN — must still be answered
    // before the server closes the connection.
    c.cmd(&[b"SET", b"5", b"55"]);
    c.cmd(&[b"GET", b"5"]);
    c.cmd(&[b"SHUTDOWN"]);
    c.cmd(&[b"GET", b"5"]);
    c.cmd(&[b"PING"]);
    c.flush().unwrap();

    assert!(c.read_reply().unwrap().is_ok());
    assert_eq!(c.read_reply().unwrap().as_u64(), Some(55));
    assert!(c.read_reply().unwrap().is_ok()); // SHUTDOWN ack
    assert_eq!(c.read_reply().unwrap().as_u64(), Some(55));
    assert_eq!(c.read_reply().unwrap(), Reply::Simple("PONG".into()));

    // ... and only then EOF.
    match c.read_reply() {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "{e}"),
        Ok(r) => panic!("expected EOF after drain, got {r:?}"),
    }

    // The whole server winds down without further prompting.
    handle.join();
}

/// Pins the variable-length value boundaries at the wire: the last size
/// that stays inline, the first that spills to the value log, a 64 KiB
/// payload, the representable maximum, and the typed `-CAPACITY` error
/// one byte past it (for both SET and MSET).
#[test]
fn value_size_boundaries_over_the_wire() {
    let (handle, addr, table) = spawn_server_with_table(ServerConfig::default());
    let mut c = client(&addr);

    let set = |c: &mut RespClient, key: &str, v: &[u8]| {
        c.call(&[b"SET", key.as_bytes(), v]).expect("SET io")
    };
    let get = |c: &mut RespClient, key: &str| match c.call(&[b"GET", key.as_bytes()]).expect("GET io") {
        Reply::Bulk(b) => b,
        other => panic!("expected bulk for {key}, got {other:?}"),
    };

    // Exactly the inline budget: round-trips and never touches the log.
    let inline = vec![b'i'; hdnh::INLINE_MAX];
    assert_eq!(set(&mut c, "1", &inline), Reply::Simple("OK".into()));
    assert_eq!(get(&mut c, "1"), inline);
    assert_eq!(table.vlog_stats().used_bytes, 0, "inline-budget value must not spill");

    // One byte past the budget: first size that spills.
    let spill = vec![b's'; hdnh::INLINE_MAX + 1];
    assert_eq!(set(&mut c, "2", &spill), Reply::Simple("OK".into()));
    assert_eq!(get(&mut c, "2"), spill);
    assert!(table.vlog_stats().used_bytes > 0, "budget+1 value must spill to the log");

    // 64 KiB, byte-exact (non-constant fill so truncation can't hide).
    let big: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    assert_eq!(set(&mut c, "3", &big), Reply::Simple("OK".into()));
    assert_eq!(get(&mut c, "3"), big);

    // The representable maximum round-trips...
    let max = vec![b'm'; hdnh::MAX_VALUE_BYTES];
    assert_eq!(set(&mut c, "4", &max), Reply::Simple("OK".into()));
    assert_eq!(get(&mut c, "4"), max);

    // ... and max+1 is a *typed* command error, not a dropped connection,
    // for SET and for MSET alike. Nothing is stored under the key.
    let over = vec![b'x'; hdnh::MAX_VALUE_BYTES + 1];
    for req in [
        &[b"SET".as_slice(), b"5", &over] as &[&[u8]],
        &[b"MSET", b"5", &over],
    ] {
        match c.call(req).expect("over-cap call io") {
            Reply::Error(e) => assert!(e.starts_with("CAPACITY"), "{e}"),
            other => panic!("expected -CAPACITY, got {other:?}"),
        }
    }
    assert_eq!(c.call(&[b"EXISTS", b"5"]).unwrap(), Reply::Int(0));
    assert!(c.ping().unwrap(), "connection must survive -CAPACITY");

    handle.shutdown_and_join();
}

#[test]
fn framing_violations_get_an_error_then_eof() {
    let (handle, addr) = spawn_server(ServerConfig::default());
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // An array element that is not a bulk string is a fatal framing error.
    s.write_all(b"*1\r\n:5\r\n").unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap(); // server replies then closes
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("-ERR protocol error"), "{text}");

    handle.shutdown_and_join();
}

#[test]
fn inline_commands_work_for_debugging() {
    let (handle, addr) = spawn_server(ServerConfig::default());
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    s.write_all(b"SET 7 77\r\nGET 7\r\nPING\r\n").unwrap();
    let mut got = Vec::new();
    let mut buf = [0u8; 1024];
    while !String::from_utf8_lossy(&got).contains("+PONG\r\n") {
        let n = s.read(&mut buf).unwrap();
        assert!(n > 0, "server closed before answering");
        got.extend_from_slice(&buf[..n]);
    }
    assert_eq!(String::from_utf8_lossy(&got), "+OK\r\n$2\r\n77\r\n+PONG\r\n");

    handle.shutdown_and_join();
}
