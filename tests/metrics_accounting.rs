//! Ground-truth accounting for the `hdnh-obs` registry: recorded OCF and
//! hot-table outcomes are checked against independently computed
//! expectations, and histogram populations against exact op counts.
//!
//! The registry is process-global, so every test here serializes on one
//! mutex and asserts only *deltas* between snapshots taken inside the
//! critical section.

use std::sync::Mutex;

use hdnh::{Hdnh, HdnhParams};
use hdnh_common::hash::KeyHashes;
use hdnh_common::HashIndex;
use hdnh_obs as obs;
use hdnh_server::{RespClient, ServerConfig};
use hdnh_ycsb::{generate_ops, KeySpace, Op, WorkloadSpec};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A poisoned lock only means another accounting test failed; the
    // registry itself is still usable.
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn ocf_outcomes_match_nvm_read_ground_truth() {
    let _g = lock();
    obs::set_enabled(true);
    // Hot table off: every get goes through the OCF to NVM, so the NVM
    // `reads` counter (API read calls; one per record the filter let
    // through) is an independent witness for the OCF outcome counters.
    let n = 2_000u64;
    let t = Hdnh::new(HdnhParams {
        enable_hot_table: false,
        ..HdnhParams::for_capacity(4 * n as usize)
    });
    let ks = KeySpace::default();
    for id in 0..n {
        t.insert(&ks.key(id), &ks.value(id, 0)).unwrap();
    }
    assert_eq!(t.resize_count(), 0, "sized to avoid resize during the probes");

    // Negative probes: no true matches; every record actually read from
    // NVM is by definition a fingerprint false positive.
    let m0 = obs::snapshot();
    let s0 = t.nvm_stats();
    for i in 0..n {
        assert!(t.get(&ks.negative_key(i)).unwrap().is_none());
    }
    let dm = obs::snapshot().since(&m0);
    let ds = t.nvm_stats().since(&s0);
    assert_eq!(dm.counter(obs::Counter::OcfTrueMatch), 0);
    assert_eq!(
        dm.counter(obs::Counter::OcfFalsePositive),
        ds.reads,
        "every NVM read on a negative probe is a false positive"
    );
    assert_eq!(dm.op(obs::OpKind::Get).count(), n);

    // Positive gets: exactly one true match per key; NVM reads are the
    // true matches plus the false positives hit along the way.
    let m0 = obs::snapshot();
    let s0 = t.nvm_stats();
    for id in 0..n {
        assert!(t.get(&ks.key(id)).unwrap().is_some());
    }
    let dm = obs::snapshot().since(&m0);
    let ds = t.nvm_stats().since(&s0);
    assert_eq!(dm.counter(obs::Counter::OcfTrueMatch), n);
    assert_eq!(
        ds.reads,
        dm.counter(obs::Counter::OcfTrueMatch) + dm.counter(obs::Counter::OcfFalsePositive),
    );
    let derived = dm.ocf_false_positive_rate();
    let expect = dm.counter(obs::Counter::OcfFalsePositive) as f64
        / (dm.counter(obs::Counter::OcfFalsePositive) + n) as f64;
    assert!((derived - expect).abs() < 1e-12, "{derived} vs {expect}");
}

#[test]
fn hot_hit_counters_match_is_hot_predictions() {
    let _g = lock();
    obs::set_enabled(true);
    let t = Hdnh::new(HdnhParams::for_capacity(4_000));
    let ks = KeySpace::default();
    for id in 0..1_000 {
        t.insert(&ks.key(id), &ks.value(id, 0)).unwrap();
    }
    let hot = t.hot_table().expect("hot table enabled by default");

    // Predict each get's hot-table outcome immediately beforehand with
    // `is_hot` (a passive probe that records nothing), then check the
    // registry recorded exactly the predicted outcome tallies.
    let m0 = obs::snapshot();
    let (mut hits, mut misses, mut gets) = (0u64, 0u64, 0u64);
    for _round in 0..3 {
        for id in 0..1_000u64 {
            let key = ks.key(id);
            let h = KeyHashes::of(&key);
            if hot.is_hot(&key, h.h1, h.h2, h.fp).is_some() {
                hits += 1;
            } else {
                misses += 1;
            }
            assert!(t.get(&key).unwrap().is_some());
            gets += 1;
        }
    }
    let dm = obs::snapshot().since(&m0);
    assert_eq!(dm.counter(obs::Counter::HotHit), hits);
    assert_eq!(dm.counter(obs::Counter::HotMiss), misses);
    assert_eq!(hits + misses, gets, "every get consults the hot table once");
    assert_eq!(dm.op(obs::OpKind::Get).count(), gets);
    assert!(hits > 0, "repeat access must produce hot-table hits");
    let expect = hits as f64 / gets as f64;
    assert!((dm.hot_hit_rate() - expect).abs() < 1e-12);
}

#[test]
fn ycsb_a_histogram_population_equals_op_count() {
    let _g = lock();
    obs::set_enabled(true);
    let t = Hdnh::new(HdnhParams::for_capacity(20_000));
    let ks = KeySpace::default();
    let preload = 5_000u64;
    for id in 0..preload {
        t.insert(&ks.key(id), &ks.value(id, 0)).unwrap();
    }
    let n_ops = 10_000usize;
    let ops = generate_ops(&WorkloadSpec::ycsb_a(), preload, preload, n_ops, 0xC0FFEE);

    let m0 = obs::snapshot();
    for op in &ops {
        match op {
            Op::Read(id) => {
                assert!(t.get(&ks.key(*id)).unwrap().is_some());
            }
            // All keys are preloaded, so the upsert resolves as exactly one
            // update — never a fallback insert.
            Op::Update(id, seq) => t.upsert(&ks.key(*id), &ks.value(*id, *seq)).unwrap(),
            other => panic!("unexpected op in YCSB-A: {other:?}"),
        }
    }
    let dm = obs::snapshot().since(&m0);

    let reads = ops.iter().filter(|o| matches!(o, Op::Read(_))).count() as u64;
    assert_eq!(dm.total_ops(), n_ops as u64, "one histogram record per op");
    assert_eq!(dm.op(obs::OpKind::Get).count(), reads);
    assert_eq!(dm.op(obs::OpKind::Update).count(), n_ops as u64 - reads);
    assert_eq!(dm.op(obs::OpKind::Insert).count(), 0);
    assert_eq!(dm.op(obs::OpKind::Remove).count(), 0);
    for kind in obs::OpKind::ALL {
        let h = dm.op(kind);
        if h.count() > 0 {
            assert!(h.quantile(0.5) >= 1, "{:?} p50", kind);
            assert!(h.max() >= h.quantile(0.99), "{:?} max vs p99", kind);
        }
    }
}

#[test]
fn net_frames_decoded_match_commands_executed() {
    let _g = lock();
    obs::set_enabled(true);
    let table = std::sync::Arc::new(Hdnh::new(HdnhParams::for_capacity(4_000)));
    let handle = hdnh_server::start(table, "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let addr = handle.local_addr().to_string();

    let m0 = obs::snapshot();
    let mut c = RespClient::connect(&addr).expect("connect");
    c.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();

    // A known command script: every request is one frame, and every frame
    // is either a recognized command (lands in exactly one per-command
    // histogram) or an unknown one (lands in the unknown counter).
    let sets = 40u64;
    let gets = 25u64;
    let unknowns = 3u64;
    for i in 0..sets {
        assert_eq!(c.set(i, i * 2).unwrap(), Ok(()));
    }
    for i in 0..gets {
        assert_eq!(c.get(i).unwrap(), Some(i * 2));
    }
    for _ in 0..unknowns {
        assert!(matches!(
            c.call(&[b"NOSUCH", b"1"]).unwrap(),
            hdnh_server::Reply::Error(_)
        ));
    }
    assert!(c.del(0).unwrap());
    assert!(c.exists(1).unwrap());
    assert_eq!(c.mget(&[1, 2, 999_999]).unwrap().len(), 3);
    assert!(c.ping().unwrap());
    drop(c);
    handle.shutdown_and_join();

    let dm = obs::snapshot().since(&m0);

    // Ground truth: frames decoded = recognized commands (one histogram
    // record each) + unknown commands.
    let frames = dm.counter(obs::Counter::NetFrameDecoded);
    let executed = dm.total_net_cmds();
    let unknown = dm.counter(obs::Counter::NetUnknownCmd);
    assert_eq!(frames, executed + unknown, "frame accounting must balance");
    assert_eq!(unknown, unknowns);
    assert_eq!(dm.net(obs::NetCmd::Set).count(), sets);
    assert_eq!(dm.net(obs::NetCmd::Get).count(), gets);
    assert_eq!(dm.net(obs::NetCmd::Del).count(), 1);
    assert_eq!(dm.net(obs::NetCmd::Exists).count(), 1);
    assert_eq!(dm.net(obs::NetCmd::MGet).count(), 1);
    assert_eq!(dm.net(obs::NetCmd::Ping).count(), 1);
    assert_eq!(dm.net(obs::NetCmd::Shutdown).count(), 0, "shutdown came via the handle");

    // The wire moved real bytes in both directions, and the server-side
    // command execution rode the table's own op histograms too.
    assert!(dm.counter(obs::Counter::NetBytesIn) > 0);
    assert!(dm.counter(obs::Counter::NetBytesOut) > 0);
    assert_eq!(dm.counter(obs::Counter::NetConnAccepted), 1);
    assert_eq!(dm.counter(obs::Counter::NetConnRejected), 0);
    assert_eq!(dm.counter(obs::Counter::NetProtocolError), 0);
    assert!(dm.op(obs::OpKind::Get).count() >= gets, "GETs hit the table path");
}
