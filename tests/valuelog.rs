//! Value-log acceptance test: a forced compaction under a live YCSB-A
//! style workload (50% reads, 50% updates, uniform keys) must reclaim at
//! least half the pre-pass garbage while concurrent readers keep
//! succeeding — they never block on the compactor and never observe a
//! missing or torn value.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hdnh::{Hdnh, HdnhParams};
use hdnh_common::rng::XorShift64Star;
use hdnh_common::Key;

const KEYS: u64 = 256;

/// Self-validating over-inline payload: 8 bytes key, 8 bytes version,
/// then an LCG stream seeded by both — any byte out of place fails
/// [`validate`], so racing reads can check correctness without knowing
/// which concurrent update they observed.
fn payload(k: u64, ver: u64) -> Vec<u8> {
    let n = 64 + ((k ^ ver) % 192) as usize;
    let mut out = vec![0u8; 16 + n];
    out[..8].copy_from_slice(&k.to_le_bytes());
    out[8..16].copy_from_slice(&ver.to_le_bytes());
    let mut x = (k ^ ver.rotate_left(32)) | 1;
    for b in &mut out[16..] {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *b = (x >> 56) as u8;
    }
    out
}

fn validate(k: u64, got: &[u8]) -> bool {
    if got.len() < 16 {
        return false;
    }
    let kk = u64::from_le_bytes(got[..8].try_into().unwrap());
    let ver = u64::from_le_bytes(got[8..16].try_into().unwrap());
    kk == k && got == &payload(k, ver)[..]
}

#[test]
fn compaction_under_live_ycsb_a_reclaims_garbage_without_blocking_reads() {
    let table = Arc::new(Hdnh::new(
        HdnhParams::builder()
            .capacity(10_000)
            .vlog_segment_bytes(16 * 1024)
            .build()
            .unwrap(),
    ));

    // Preload, then overwrite everything twice: about two thirds of the
    // log is now tombstoned.
    for k in 0..KEYS {
        table.insert_bytes(&Key::from_u64(k), &payload(k, 0)).unwrap();
    }
    for ver in 1..=2 {
        for k in 0..KEYS {
            table.update_bytes(&Key::from_u64(k), &payload(k, ver)).unwrap();
        }
    }
    let before = table.vlog_stats();
    assert!(before.garbage_bytes * 2 >= before.used_bytes, "{before:?}");

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..4u64)
        .map(|w| {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            std::thread::spawn(move || {
                let mut rng = XorShift64Star::new(0xACE1 + w);
                // Distinct version ranges per worker keep payloads unique.
                let mut ver = 2 + w * 1_000_000;
                while !stop.load(Ordering::Relaxed) {
                    let k = u64::from(rng.next_below(KEYS as u32));
                    if rng.next_u64() & 1 == 0 {
                        let got = table
                            .get_bytes(&Key::from_u64(k))
                            .expect("read must not fail during GC")
                            .expect("key must not vanish during GC");
                        assert!(validate(k, &got), "torn or forged value for key {k}");
                        reads.fetch_add(1, Ordering::Relaxed);
                    } else {
                        ver += 1;
                        table
                            .update_bytes(&Key::from_u64(k), &payload(k, ver))
                            .expect("update must not fail during GC");
                    }
                }
            })
        })
        .collect();

    // Let the mix get going, force one compaction pass, then require the
    // readers to make another chunk of progress before stopping — if the
    // pass blocked them, this would hang rather than pass vacuously.
    while reads.load(Ordering::Relaxed) < 500 {
        std::thread::yield_now();
    }
    let report = table.compact().unwrap();
    let at_gc_done = reads.load(Ordering::Relaxed);
    while reads.load(Ordering::Relaxed) < at_gc_done + 500 {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    assert!(
        report.bytes_reclaimed * 2 >= before.garbage_bytes,
        "reclaimed {} of {} garbage bytes: {report:?}",
        report.bytes_reclaimed,
        before.garbage_bytes
    );
    assert!(report.segments_retired > 0, "{report:?}");

    // Post-GC: every key readable and self-consistent, deep integrity
    // clean, and the report surfaced through the stats plumbing.
    for k in 0..KEYS {
        let got = table.get_bytes(&Key::from_u64(k)).unwrap().unwrap();
        assert!(validate(k, &got), "key {k} unreadable after GC");
    }
    table.verify_integrity().unwrap();
    assert_eq!(table.vlog_stats().last_gc, Some(report));
}
