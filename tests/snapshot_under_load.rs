//! Crash-consistent snapshots under concurrent write load.
//!
//! Writers hammer a file-backed pool (inserts + updates, enough volume to
//! force at least one resize) while the main thread takes a live snapshot
//! mid-load. The snapshot must verify against its manifest, restore into a
//! fresh directory, and the restored table must contain **every write that
//! was acknowledged before the snapshot began** — with a clean scrub.

#![cfg(unix)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use hdnh::{verify_snapshot, Hdnh, HdnhParams};
use hdnh_common::{Key, Value};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdnh-snapload-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn params() -> HdnhParams {
    // Small capacity so the load forces resizes while writers are live.
    HdnhParams::builder().capacity(2_000).build().unwrap()
}

const WRITERS: usize = 4;
const KEY_STRIDE: u64 = 1_000_000;

fn key_of(writer: usize, i: u64) -> u64 {
    writer as u64 * KEY_STRIDE + i
}

fn value_of(key: u64) -> u64 {
    key.wrapping_mul(7).wrapping_add(3)
}

#[test]
fn snapshot_mid_load_restores_every_acked_write() {
    let pool = tmp_dir("pool");
    let snap = tmp_dir("snap");
    let dest = tmp_dir("dest");
    let (table, _) = Hdnh::open_pool(params(), &pool, WRITERS + 1).unwrap();

    // Per-writer watermark: keys 0..watermark are acknowledged durable.
    let acked: Vec<AtomicU64> = (0..WRITERS).map(|_| AtomicU64::new(0)).collect();
    let stop = AtomicBool::new(false);

    let (files, bytes, watermarks) = std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let table = &table;
            let acked = &acked[w];
            let stop = &stop;
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = key_of(w, i);
                    table
                        .insert(&Key::from_u64(k), &Value::from_u64(value_of(k)))
                        .unwrap_or_else(|e| panic!("writer {w} insert {k}: {e}"));
                    acked.store(i + 1, Ordering::Release);
                    // Churn an older key so update paths run under load too.
                    if i > 16 {
                        let old = key_of(w, i / 2);
                        table
                            .update(&Key::from_u64(old), &Value::from_u64(value_of(old)))
                            .unwrap_or_else(|e| panic!("writer {w} update {old}: {e}"));
                    }
                    i += 1;
                }
            });
        }

        // Let the load build up past at least one resize, then snapshot
        // while the writers are still running.
        while table.resize_count() == 0 {
            std::thread::yield_now();
        }
        let watermarks: Vec<u64> = acked.iter().map(|a| a.load(Ordering::Acquire)).collect();
        let report = table
            .snapshot(&snap)
            .unwrap_or_else(|e| panic!("snapshot under load failed: {e}"));
        stop.store(true, Ordering::Relaxed);
        (report.files, report.bytes, watermarks)
    });
    assert!(table.resize_count() > 0, "load never forced a resize");
    assert!(files >= 4, "snapshot copied only {files} files");
    assert!(bytes > 0);
    assert!(
        watermarks.iter().all(|&w| w > 0),
        "some writer never acked anything before the snapshot: {watermarks:?}"
    );

    // The live pool is untouched by the snapshot: still consistent, still
    // writable, and closeable clean.
    let scrub = table.scrub();
    assert!(scrub.clean(), "live table dirty after snapshot: {scrub:?}");
    table.close_pool().unwrap();

    // The snapshot verifies standalone and restores into a fresh dir.
    let manifest = verify_snapshot(&snap).unwrap_or_else(|e| panic!("snapshot corrupt: {e}"));
    assert!(manifest.entries.len() >= 4);
    let (restored, report) =
        Hdnh::restore_snapshot(params(), &snap, &dest, 2).unwrap_or_else(|e| {
            panic!("restore failed: {e}")
        });
    // The snapshot superblock is always written dirty, so the restore ran
    // full recovery on a pre-existing pool image.
    assert!(!report.created);
    assert!(!report.was_clean);
    assert!(report.layout_epoch >= 1);

    // Every write acked before the snapshot began must have survived.
    for (w, &hi) in watermarks.iter().enumerate() {
        for i in 0..hi {
            let k = key_of(w, i);
            let got = restored.get(&Key::from_u64(k)).unwrap().map(|v| v.as_u64());
            assert_eq!(
                got,
                Some(value_of(k)),
                "writer {w} key {k} was acked before the snapshot but is missing"
            );
        }
    }
    let (reports, live) = restored.verify_integrity_report();
    assert!(reports.iter().all(|r| r.ok), "{reports:?}");
    assert!(live as u64 >= watermarks.iter().sum::<u64>());
    let scrub = restored.scrub();
    assert!(scrub.clean(), "restored table dirty: {scrub:?}");
    restored.close_pool().unwrap();

    // The restored pool also reopens clean afterwards (restore closed it
    // with a clean superblock).
    let (again, report) = Hdnh::open_pool(params(), &dest, 2).unwrap();
    assert!(report.was_clean, "restore must leave a cleanly-closed pool");
    again.close_pool().unwrap();

    for d in [&pool, &snap, &dest] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// A second snapshot of the same table into the same directory must be
/// refused (the target is not empty), and snapshotting a heap-backed table
/// is a config error — the documented CLI/BACKUP failure modes.
#[test]
fn snapshot_refuses_bad_targets() {
    let pool = tmp_dir("refuse-pool");
    let snap = tmp_dir("refuse-snap");
    let (table, _) = Hdnh::open_pool(params(), &pool, 2).unwrap();
    for id in 0..100u64 {
        table
            .insert(&Key::from_u64(id), &Value::from_u64(id + 1))
            .unwrap();
    }
    table.snapshot(&snap).unwrap();
    match table.snapshot(&snap) {
        Err(hdnh::HdnhError::Config(msg)) => {
            assert!(msg.contains("snapshot"), "{msg}");
        }
        other => panic!("re-snapshot into a full dir must fail, got {other:?}"),
    }
    table.close_pool().unwrap();

    let heap = Hdnh::new(params());
    match heap.snapshot(&tmp_dir("refuse-heap")) {
        Err(hdnh::HdnhError::Config(_)) => {}
        other => panic!("heap snapshot must be a Config error, got {other:?}"),
    }

    for d in [&pool, &snap] {
        let _ = std::fs::remove_dir_all(d);
    }
}
