//! Exhaustive crash-point matrix (the fault-injection acceptance test).
//!
//! Drives `hdnh::faultexplore` over every named crash site discovered by
//! the built-in op mixes, crashing at sampled hit counts and verifying that
//! recovery restores an oracle-consistent, invariant-clean table. Runs in
//! its own test binary because the fault registry is process-global: one
//! `#[test]` owns the whole matrix so nothing else can arm or record
//! concurrently.

use hdnh::faultexplore::{explore, ExploreConfig};

/// Site categories the ISSUE demands coverage for, with a witness prefix.
const REQUIRED_CATEGORIES: &[(&str, &str)] = &[
    ("insert", "insert."),
    ("update", "update."),
    ("update-fallback", "update.fallback."),
    ("remove", "remove."),
    ("resize-allocate", "resize.alloc"),
    ("resize-migrate", "migrate."),
    ("resize-swap", "resize.swapped"),
    ("sync-write", "hot."),
    ("recovery", "recover."),
    ("nvm-store", "nvm.write"),
    ("nvm-flush", "nvm.flush"),
    ("nvm-fence", "nvm.fence"),
    ("nvm-cas", "nvm.cas"),
];

#[test]
fn crash_point_matrix() {
    let cfg = ExploreConfig::full();
    let mut n = 0usize;
    let report = explore(&cfg, |case| {
        n += 1;
        if !case.pass {
            eprintln!("FAIL {} :: {}", case.repro(), case.detail);
        } else if n.is_multiple_of(50) {
            eprintln!("... {n} cases, last {}", case.repro());
        }
    });

    // Coverage: the matrix must have discovered a rich site inventory.
    assert!(
        report.sites_seen.len() >= 25,
        "only {} distinct crash sites discovered: {:?}",
        report.sites_seen.len(),
        report.sites_seen.keys().collect::<Vec<_>>()
    );
    for (category, prefix) in REQUIRED_CATEGORIES {
        assert!(
            report.sites_seen.keys().any(|s| s.starts_with(prefix)),
            "no crash site covers category '{category}' (prefix '{prefix}'); saw {:?}",
            report.sites_seen.keys().collect::<Vec<_>>()
        );
    }

    // Correctness: every (mix, site, hit, seed) case recovered cleanly.
    let failures = report.failures();
    assert!(
        failures.is_empty(),
        "{} of {} cases failed:\n{}",
        failures.len(),
        report.cases.len(),
        failures
            .iter()
            .map(|f| format!("  {} :: {}", f.repro(), f.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.cases.len() >= 100, "matrix suspiciously small: {n} cases");
}
