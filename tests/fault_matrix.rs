//! Exhaustive crash-point matrix (the fault-injection acceptance test).
//!
//! Drives `hdnh::faultexplore` over every named crash site discovered by
//! the built-in op mixes, crashing at sampled hit counts and verifying that
//! recovery restores an oracle-consistent, invariant-clean table. Runs in
//! its own test binary because the fault registry is process-global: one
//! `#[test]` owns the whole matrix so nothing else can arm or record
//! concurrently.

use hdnh::faultexplore::{
    explore, hit_samples, record_sites_pool, run_single_pool, ExploreConfig, OpMix,
};
use hdnh_nvm::FaultPlan;

/// Site categories the ISSUE demands coverage for, with a witness prefix.
const REQUIRED_CATEGORIES: &[(&str, &str)] = &[
    ("insert", "insert."),
    ("update", "update."),
    ("update-fallback", "update.fallback."),
    ("remove", "remove."),
    ("resize-allocate", "resize.alloc"),
    ("resize-migrate", "migrate."),
    ("resize-swap", "resize.swapped"),
    ("sync-write", "hot."),
    ("recovery", "recover."),
    ("nvm-store", "nvm.write"),
    ("nvm-flush", "nvm.flush"),
    ("nvm-fence", "nvm.fence"),
    ("nvm-cas", "nvm.cas"),
];

#[test]
fn crash_point_matrix() {
    let cfg = ExploreConfig::full();
    let mut n = 0usize;
    let report = explore(&cfg, |case| {
        n += 1;
        if !case.pass {
            eprintln!("FAIL {} :: {}", case.repro(), case.detail);
        } else if n.is_multiple_of(50) {
            eprintln!("... {n} cases, last {}", case.repro());
        }
    });

    // Coverage: the matrix must have discovered a rich site inventory.
    assert!(
        report.sites_seen.len() >= 25,
        "only {} distinct crash sites discovered: {:?}",
        report.sites_seen.len(),
        report.sites_seen.keys().collect::<Vec<_>>()
    );
    for (category, prefix) in REQUIRED_CATEGORIES {
        assert!(
            report.sites_seen.keys().any(|s| s.starts_with(prefix)),
            "no crash site covers category '{category}' (prefix '{prefix}'); saw {:?}",
            report.sites_seen.keys().collect::<Vec<_>>()
        );
    }

    // Correctness: every (mix, site, hit, seed) case recovered cleanly.
    let failures = report.failures();
    assert!(
        failures.is_empty(),
        "{} of {} cases failed:\n{}",
        failures.len(),
        report.cases.len(),
        failures
            .iter()
            .map(|f| format!("  {} :: {}", f.repro(), f.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.cases.len() >= 100, "matrix suspiciously small: {n} cases");

    // ---- pool-backend rows: same sites, mmap flush path, power loss ----
    //
    // Re-run the matrix under `Backend::Pool` with shadow persistence and
    // the blocking sync policy: the injected crash is followed by a torn/
    // dropped/reordered power loss of every un-fenced line, and recovery
    // goes through the full `open_pool` path (superblock, size
    // classification, orphan sweep). Runs in the same #[test] because the
    // fault registry is process-global.
    //
    // Seeds 0/1/2 pick the three loss modes via `LossMode::from_seed`, so
    // every (site, hit) sample sees drop-pages, tear-lines and
    // reorder-pages at least once across the sweep. Bounded per-site to
    // keep the wall clock sane: first and last hit only, seeds rotated.
    let mut pool_cases = 0usize;
    let mut pool_failures: Vec<String> = Vec::new();
    let mut pool_sites = 0usize;
    for mix in OpMix::builtin() {
        let counts = record_sites_pool(&mix)
            .unwrap_or_else(|e| panic!("pool site recording failed for {}: {e}", mix.name));
        assert!(
            !counts.is_empty(),
            "pool recording discovered no crash sites for mix {}",
            mix.name
        );
        pool_sites += counts.len();
        for (site, hits) in &counts {
            let mut samples = hit_samples(*hits);
            // First and last hit: the middle sample buys little here and
            // the pool path is ~10× slower per case than the heap path.
            if samples.len() > 2 {
                samples = vec![samples[0], *samples.last().unwrap()];
            }
            for (i, hit) in samples.into_iter().enumerate() {
                let seed = (pool_cases + i) as u64 % 3;
                let plan = FaultPlan {
                    site: site.to_string(),
                    hit,
                };
                let r = run_single_pool(&mix, &plan, seed, 2);
                pool_cases += 1;
                if !r.pass {
                    eprintln!("POOL FAIL {} :: {}", r.repro(), r.detail);
                    pool_failures.push(format!("  {} :: {}", r.repro(), r.detail));
                } else if pool_cases.is_multiple_of(50) {
                    eprintln!("... {pool_cases} pool cases, last {}", r.repro());
                }
            }
        }
    }
    assert!(
        pool_failures.is_empty(),
        "{} of {} pool-backend cases failed:\n{}",
        pool_failures.len(),
        pool_cases,
        pool_failures.join("\n")
    );
    assert!(
        pool_cases >= 50,
        "pool matrix suspiciously small: {pool_cases} cases over {pool_sites} sites"
    );
}
