//! Cross-scheme conformance: every index (HDNH and the three baselines)
//! must agree with an in-memory oracle over randomized operation
//! sequences, through the shared `HashIndex` trait.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use hdnh::{Hdnh, HdnhParams, HotPolicy, SyncMode};
use hdnh_baselines::{Cceh, CcehParams, LevelHash, LevelParams, PathHash, PathParams};
use hdnh_common::rng::XorShift64Star;
use hdnh_common::{HashIndex, IndexError, Key, Value};

fn schemes() -> Vec<(&'static str, Box<dyn HashIndex>)> {
    vec![
        (
            "HDNH",
            Box::new(Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .build()
        .unwrap())) as Box<dyn HashIndex>,
        ),
        (
            "HDNH-bg-lru",
            Box::new(Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .sync_mode(SyncMode::Background)
        .hot_policy(HotPolicy::Lru)
        .build()
        .unwrap())),
        ),
        (
            "LEVEL",
            Box::new(LevelHash::new(LevelParams {
                initial_top_buckets: 16,
                ..Default::default()
            })),
        ),
        (
            "CCEH",
            Box::new(Cceh::new(CcehParams {
                segment_bytes: 2048,
                initial_depth: 1,
                ..Default::default()
            })),
        ),
        (
            "PATH",
            Box::new(PathHash::new(PathParams {
                root_cells: 1 << 13, // static: size for the whole test
                reserved_levels: 8,
                ..Default::default()
            })),
        ),
    ]
}

/// Randomized CRUD fuzz against a HashMap oracle.
#[test]
fn randomized_ops_match_oracle() {
    for (name, idx) in schemes() {
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        let mut rng = XorShift64Star::new(0xFACE);
        for step in 0..30_000u64 {
            let id = rng.next_u64() % 2_000;
            let key = Key::from_u64(id);
            match rng.next_below(10) {
                // 40%: insert
                0..=3 => {
                    let val = step;
                    let res = idx.insert(&key, &Value::from_u64(val));
                    match oracle.entry(id) {
                        Entry::Occupied(_) => {
                            assert_eq!(res, Err(IndexError::DuplicateKey), "{name} step {step}");
                        }
                        Entry::Vacant(slot) => {
                            res.unwrap_or_else(|e| panic!("{name} insert failed: {e} at {step}"));
                            slot.insert(val);
                        }
                    }
                }
                // 20%: update
                4..=5 => {
                    let val = step + 1_000_000_000;
                    let res = idx.update(&key, &Value::from_u64(val));
                    match oracle.entry(id) {
                        Entry::Occupied(mut slot) => {
                            res.unwrap_or_else(|e| panic!("{name} update failed: {e} at {step}"));
                            slot.insert(val);
                        }
                        Entry::Vacant(_) => {
                            assert_eq!(res, Err(IndexError::KeyNotFound), "{name} step {step}");
                        }
                    }
                }
                // 20%: delete
                6..=7 => {
                    let res = idx.remove(&key);
                    assert_eq!(res, oracle.remove(&id).is_some(), "{name} step {step}");
                }
                // 20%: get
                _ => {
                    let got = idx.get(&key).map(|v| v.as_u64());
                    assert_eq!(got, oracle.get(&id).copied(), "{name} step {step} id {id}");
                }
            }
            if step % 5_000 == 0 {
                assert_eq!(idx.len(), oracle.len(), "{name} len drift at {step}");
            }
        }
        // Full final audit.
        assert_eq!(idx.len(), oracle.len(), "{name} final len");
        for (&id, &val) in &oracle {
            assert_eq!(
                idx.get(&Key::from_u64(id)).map(|v| v.as_u64()),
                Some(val),
                "{name} final id {id}"
            );
        }
    }
}

/// The upsert default must behave identically everywhere.
#[test]
fn upsert_semantics_are_uniform() {
    for (name, idx) in schemes() {
        let k = Key::from_u64(99);
        idx.upsert(&k, &Value::from_u64(1)).unwrap();
        idx.upsert(&k, &Value::from_u64(2)).unwrap();
        assert_eq!(idx.get(&k).unwrap().as_u64(), 2, "{name}");
        assert_eq!(idx.len(), 1, "{name}");
    }
}

/// Growth far past the initial capacity (resize/split paths) while keeping
/// every record reachable.
#[test]
fn growth_preserves_all_records() {
    for (name, idx) in schemes() {
        let n: u64 = if name == "PATH" { 4_000 } else { 20_000 };
        for i in 0..n {
            idx.insert(&Key::from_u64(i), &Value::from_u64(i * 3))
                .unwrap_or_else(|e| panic!("{name}: insert {i}: {e}"));
        }
        assert_eq!(idx.len(), n as usize, "{name}");
        for i in (0..n).step_by(7) {
            assert_eq!(idx.get(&Key::from_u64(i)).unwrap().as_u64(), i * 3, "{name} key {i}");
        }
        let lf = idx.load_factor();
        assert!(lf > 0.0 && lf <= 1.0, "{name} load factor {lf}");
    }
}

/// Concurrent mixed workload on every scheme: disjoint writer key ranges,
/// readers validating value integrity.
#[test]
fn concurrent_mixed_workload_is_linearizable_per_key() {
    for (name, idx) in schemes() {
        let idx = std::sync::Arc::new(idx);
        std::thread::scope(|s| {
            for tid in 0..2u64 {
                let idx = std::sync::Arc::clone(&idx);
                s.spawn(move || {
                    let base = tid * 100_000;
                    for i in 0..3_000u64 {
                        let id = base + (i % 500);
                        let key = Key::from_u64(id);
                        // Value always encodes its key: readers can detect
                        // foreign/torn values.
                        let _ = idx.upsert(&key, &Value::from_u64(id ^ 0x5555));
                    }
                });
            }
            for _ in 0..2 {
                let idx = std::sync::Arc::clone(&idx);
                s.spawn(move || {
                    let mut rng = XorShift64Star::new(7);
                    for _ in 0..6_000 {
                        let tid = rng.next_below(2) as u64;
                        let id = tid * 100_000 + rng.next_u64() % 500;
                        if let Some(v) = idx.get(&Key::from_u64(id)) {
                            assert_eq!(v.as_u64(), id ^ 0x5555, "{name}: foreign value for {id}");
                        }
                    }
                });
            }
        });
    }
}
