//! Property-based tests (proptest) over the core data structures and
//! invariants: random op sequences vs an oracle for every scheme, codec
//! roundtrips, region semantics, and distribution sanity.

// The `.. ProptestConfig::default()` spread is redundant against the local
// proptest shim (one field) but required by the real crate; keep the
// portable spelling.
#![allow(clippy::needless_update)]

use std::collections::HashMap;

use hdnh::{Hdnh, HdnhParams, HotPolicy};
use hdnh_common::{HashIndex, Key, Record, Value, RECORD_LEN};
use hdnh_nvm::{NvmOptions, NvmRegion};
use hdnh_ycsb::KeySpace;
use proptest::prelude::*;

/// Abstract operation for model-based testing.
#[derive(Clone, Debug)]
enum MOp {
    Insert(u16, u32),
    Update(u16, u32),
    Remove(u16),
    Get(u16),
}

fn mop_strategy() -> impl Strategy<Value = MOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| MOp::Insert(k % 512, v)),
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| MOp::Update(k % 512, v)),
        any::<u16>().prop_map(|k| MOp::Remove(k % 512)),
        any::<u16>().prop_map(|k| MOp::Get(k % 512)),
    ]
}

fn check_against_oracle(idx: &dyn HashIndex, ops: &[MOp]) {
    let mut oracle: HashMap<u16, u32> = HashMap::new();
    for op in ops {
        match op {
            MOp::Insert(id, val) => {
                let res = idx.insert(&Key::from_u64(*id as u64), &Value::from_u64(*val as u64));
                assert_eq!(res.is_ok(), !oracle.contains_key(id), "{op:?}");
                if res.is_ok() {
                    oracle.insert(*id, *val);
                }
            }
            MOp::Update(id, val) => {
                let res = idx.update(&Key::from_u64(*id as u64), &Value::from_u64(*val as u64));
                assert_eq!(res.is_ok(), oracle.contains_key(id), "{op:?}");
                if res.is_ok() {
                    oracle.insert(*id, *val);
                }
            }
            MOp::Remove(id) => {
                assert_eq!(
                    idx.remove(&Key::from_u64(*id as u64)),
                    oracle.remove(id).is_some(),
                    "{op:?}"
                );
            }
            MOp::Get(id) => {
                assert_eq!(
                    idx.get(&Key::from_u64(*id as u64)).map(|v| v.as_u64()),
                    oracle.get(id).map(|&v| v as u64),
                    "{op:?}"
                );
            }
        }
    }
    assert_eq!(idx.len(), oracle.len());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn hdnh_matches_oracle(ops in proptest::collection::vec(mop_strategy(), 1..400)) {
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(1)
        .build()
        .unwrap());
        check_against_oracle(&t, &ops);
    }

    #[test]
    fn hdnh_lru_matches_oracle(ops in proptest::collection::vec(mop_strategy(), 1..300)) {
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(1)
        .hot_policy(HotPolicy::Lru)
        .hot_capacity_ratio(0.05)
        .build()
        .unwrap());
        check_against_oracle(&t, &ops);
    }

    #[test]
    fn level_hash_matches_oracle(ops in proptest::collection::vec(mop_strategy(), 1..300)) {
        let t = hdnh_baselines::LevelHash::new(hdnh_baselines::LevelParams {
            initial_top_buckets: 8,
            ..Default::default()
        });
        check_against_oracle(&t, &ops);
    }

    #[test]
    fn cceh_matches_oracle(ops in proptest::collection::vec(mop_strategy(), 1..300)) {
        let t = hdnh_baselines::Cceh::new(hdnh_baselines::CcehParams {
            segment_bytes: 1024,
            initial_depth: 1,
            ..Default::default()
        });
        check_against_oracle(&t, &ops);
    }

    #[test]
    fn path_hash_matches_oracle(ops in proptest::collection::vec(mop_strategy(), 1..300)) {
        let t = hdnh_baselines::PathHash::new(hdnh_baselines::PathParams {
            root_cells: 2048,
            reserved_levels: 8,
            ..Default::default()
        });
        check_against_oracle(&t, &ops);
    }

    /// Crash/recover with random ops and a random crash seed: recovered
    /// state equals pre-crash acknowledged state (invariant I5).
    #[test]
    fn recovery_equals_acknowledged_state(
        ops in proptest::collection::vec(mop_strategy(), 1..200),
        crash_seed in any::<u64>(),
    ) {
        let params = HdnhParams::builder()
         .segment_bytes(1024)
         .initial_bottom_segments(1)
         .nvm(NvmOptions::strict())
         .build()
         .unwrap();
        let t = Hdnh::new(params.clone());
        let mut oracle: HashMap<u16, u32> = HashMap::new();
        for op in &ops {
            match op {
                MOp::Insert(id, val) => {
                    if t.insert(&Key::from_u64(*id as u64), &Value::from_u64(*val as u64)).is_ok() {
                        oracle.insert(*id, *val);
                    }
                }
                MOp::Update(id, val) => {
                    if t.update(&Key::from_u64(*id as u64), &Value::from_u64(*val as u64)).is_ok() {
                        oracle.insert(*id, *val);
                    }
                }
                MOp::Remove(id) => {
                    if t.remove(&Key::from_u64(*id as u64)).unwrap() {
                        oracle.remove(id);
                    }
                }
                MOp::Get(_) => {}
            }
        }
        let pool = t.into_pool();
        pool.crash(crash_seed);
        let r = Hdnh::recover(params, pool, 2);
        prop_assert_eq!(r.len(), oracle.len());
        for (&id, &val) in &oracle {
            prop_assert_eq!(
                r.get(&Key::from_u64(id as u64)).unwrap().map(|v| v.as_u64()),
                Some(val as u64)
            );
        }
    }

    /// Trace codec roundtrips arbitrary op streams.
    #[test]
    fn trace_roundtrip_arbitrary_ops(
        raw in proptest::collection::vec((0u8..6, any::<u64>(), any::<u32>()), 0..300)
    ) {
        use hdnh_ycsb::trace::{read_trace, write_trace};
        use hdnh_ycsb::Op;
        let ops: Vec<Op> = raw
            .into_iter()
            .map(|(tag, id, seq)| match tag {
                0 => Op::Read(id),
                1 => Op::ReadAbsent(id),
                2 => Op::Insert(id),
                3 => Op::Update(id, seq),
                4 => Op::ReadModifyWrite(id, seq),
                _ => Op::Delete(id),
            })
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        prop_assert_eq!(read_trace(&mut buf.as_slice()).unwrap(), ops);
    }

    /// Record serialization roundtrips for arbitrary bytes.
    #[test]
    fn record_codec_roundtrip(key in any::<[u8; 16]>(), value in any::<[u8; 15]>()) {
        let rec = Record::new(Key(key), Value(value));
        let bytes = rec.to_bytes();
        prop_assert_eq!(bytes.len(), RECORD_LEN);
        prop_assert_eq!(Record::from_bytes(&bytes), rec);
    }

    /// Region writes at arbitrary (offset, data) never disturb neighbours.
    #[test]
    fn region_writes_are_exact(
        off in 0usize..1000,
        data in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let region = NvmRegion::new(1064, NvmOptions::fast());
        // Paint the whole region, overwrite a window, check all bytes.
        let backdrop = vec![0xA5u8; 1064];
        region.write_bytes(0, &backdrop);
        region.write_bytes(off, &data);
        let mut out = vec![0u8; 1064];
        region.peek(0, &mut out);
        for (i, &b) in out.iter().enumerate() {
            if i >= off && i < off + data.len() {
                prop_assert_eq!(b, data[i - off]);
            } else {
                prop_assert_eq!(b, 0xA5);
            }
        }
    }

    /// KeySpace validation accepts every canonical value and rejects any
    /// single-byte corruption.
    #[test]
    fn keyspace_validation_detects_corruption(
        id in any::<u64>(),
        version in any::<u32>(),
        flip_byte in 0usize..15,
        flip_bit in 0u8..8,
    ) {
        let ks = KeySpace::default();
        let val = ks.value(id, version);
        prop_assert_eq!(ks.validate(id, &val), Some(version));
        let mut corrupted = val;
        corrupted.0[flip_byte] ^= 1 << flip_bit;
        prop_assert_eq!(ks.validate(id, &corrupted), None);
    }

    /// The 8-byte bucket header round-trips (validity bitmap, 8×7-bit
    /// slot metadata fields) exactly — no bit of the CRC-6 digest or the
    /// spill flag is lost to packing.
    #[test]
    fn header_roundtrips_validity_and_checksums(valid in any::<u8>(), raw in any::<u64>()) {
        use hdnh::nvtable::{
            header_checksum, header_pack, header_slot_spilled, header_slot_valid,
            header_unpack, CHECKSUM_MASK, SPILL_FLAG,
        };
        use hdnh::params::SLOTS_PER_BUCKET;
        let mut metas = [0u8; SLOTS_PER_BUCKET];
        for (s, meta) in metas.iter_mut().enumerate() {
            *meta = ((raw >> (7 * s)) & 0x7F) as u8;
        }
        let h = header_pack(valid, metas);
        let (v2, metas2) = header_unpack(h);
        prop_assert_eq!(v2, valid);
        prop_assert_eq!(metas2, metas);
        for (s, &meta) in metas.iter().enumerate() {
            prop_assert_eq!(header_slot_valid(h, s), valid & (1 << s) != 0);
            prop_assert_eq!(header_checksum(h, s), meta & CHECKSUM_MASK as u8);
            prop_assert_eq!(header_slot_spilled(h, s), meta & SPILL_FLAG != 0);
        }
    }

    /// A torn record write — leading bytes from the new version, the tail
    /// still holding the old — is accepted by the committed checksum only
    /// on a 7-bit digest collision (the documented 1/128 false-accept);
    /// the fully-written record always verifies.
    #[test]
    fn torn_record_write_is_detected_modulo_digest_collision(
        new_bytes in any::<[u8; 31]>(),
        old_bytes in any::<[u8; 31]>(),
        cut in 1usize..31,
        slot in 0usize..8,
    ) {
        use hdnh::nvtable::{checksum6, header_pack, slot_checksum_ok};
        use hdnh::params::SLOTS_PER_BUCKET;
        let ck = checksum6(&new_bytes);
        let mut cks = [0u8; SLOTS_PER_BUCKET];
        cks[slot] = ck;
        let header = header_pack(0xFF, cks);
        let mut torn = new_bytes;
        torn[cut..].copy_from_slice(&old_bytes[cut..]);
        prop_assert!(slot_checksum_ok(header, slot, &Record::from_bytes(&new_bytes)));
        let collide = checksum6(&torn) == ck;
        prop_assert_eq!(
            slot_checksum_ok(header, slot, &Record::from_bytes(&torn)),
            collide
        );
    }

    /// Value-log records round-trip for arbitrary keys and payloads.
    #[test]
    fn vlog_record_roundtrip(
        key in any::<[u8; 16]>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        use hdnh::vlog::{decode_record, encode_record, footprint};
        let rec = encode_record(&Key(key), &payload);
        prop_assert_eq!(rec.len(), footprint(payload.len()));
        prop_assert_eq!(rec.len() % 8, 0);
        let (k, p) = decode_record(&rec).expect("fully written record decodes");
        prop_assert_eq!(k, Key(key));
        prop_assert_eq!(p, &payload[..]);
    }

    /// A torn append — the record's tail cachelines still holding stale
    /// log bytes — is detected by the CRC, and detection never turns into
    /// forgery: any decode that succeeds yields exactly the original.
    #[test]
    fn vlog_torn_cacheline_is_detected_never_forged(
        key in any::<[u8; 16]>(),
        payload in proptest::collection::vec(any::<u8>(), 1..1024),
        stale_seed in any::<u64>(),
        cut_line in 0usize..32,
    ) {
        use hdnh::vlog::{decode_record, encode_record};
        let rec = encode_record(&Key(key), &payload);
        // Tear at a 64-byte cacheline boundary: lines before `cut` carry
        // the new write, lines after still hold stale bytes (an LCG fill
        // standing in for whatever the log held before).
        let cut = (cut_line * 64) % rec.len();
        let mut torn = rec.clone();
        let mut x = stale_seed;
        for b in &mut torn[cut..] {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (x >> 56) as u8;
        }
        if torn != rec {
            if let Some((k, p)) = decode_record(&torn) {
                // A decode may still succeed when the tear only touched
                // the zero padding past the CRC; it must then describe
                // the original record, never a forged (key, payload).
                prop_assert!(k == Key(key) && p == &payload[..], "forged record");
            }
        }
    }

    /// Spill pointers round-trip through the 15-byte slot encoding, never
    /// collide with inline encodings, and reject doctored pad bytes.
    #[test]
    fn vlog_ptr_roundtrip_and_discrimination(
        segment in any::<u32>(),
        offset in any::<u32>(),
        len in 1u32..hdnh::MAX_VALUE_BYTES as u32 + 1,
        inline in proptest::collection::vec(any::<u8>(), 0..hdnh::INLINE_MAX + 1),
    ) {
        use hdnh::{vlog, VlogPtr};
        let ptr = VlogPtr { segment, offset, len };
        let v = ptr.to_value();
        prop_assert_eq!(VlogPtr::from_value(&v), Some(ptr));
        // A pointer value is never mistaken for an inline payload...
        prop_assert_eq!(vlog::decode_inline(&v), None);
        // ...and an inline value is never mistaken for a pointer.
        let iv = vlog::encode_inline(&inline);
        prop_assert_eq!(VlogPtr::from_value(&iv), None);
        prop_assert_eq!(vlog::decode_inline(&iv), Some(&inline[..]));
        // Non-zero pad bytes mark a fixed-API value, not a pointer.
        let mut doctored = v;
        doctored.0[13] = 1;
        prop_assert_eq!(VlogPtr::from_value(&doctored), None);
    }

    /// Load factor stays within [0, 1] under arbitrary sequences.
    #[test]
    fn load_factor_bounded(ops in proptest::collection::vec(mop_strategy(), 1..200)) {
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(1)
        .build()
        .unwrap());
        for op in &ops {
            match op {
                MOp::Insert(id, val) => { let _ = t.insert(&Key::from_u64(*id as u64), &Value::from_u64(*val as u64)); }
                MOp::Update(id, val) => { let _ = t.update(&Key::from_u64(*id as u64), &Value::from_u64(*val as u64)); }
                MOp::Remove(id) => { let _ = t.remove(&Key::from_u64(*id as u64)).unwrap(); }
                MOp::Get(id) => { let _ = t.get(&Key::from_u64(*id as u64)); }
            }
            let lf = t.load_factor();
            prop_assert!((0.0..=1.0).contains(&lf), "load factor {}", lf);
        }
    }
}
