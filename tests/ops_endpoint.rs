//! End-to-end coverage of the HTTP ops plane: every route answers over a
//! real socket, `/readyz` follows the startup → ready → draining
//! lifecycle, and a forced resize under live RESP traffic shows up in the
//! `/trace` timeline as all three resize phases interleaved with slow-op
//! exemplars.
//!
//! The obs registry and flight recorder are process-global, so the tests
//! serialize on one mutex (same discipline as `metrics_accounting.rs`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use hdnh::{Hdnh, HdnhParams};
use hdnh_obs as obs;
use hdnh_server::{start_ops, start_with_state, OpsState, RespClient, ServerConfig};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Minimal HTTP/1.0 GET: returns (status code, body).
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect ops port");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(s, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn ops_routes_answer_and_readyz_tracks_lifecycle() {
    let _g = lock();
    obs::reset();
    obs::trace::reset();
    obs::set_enabled(true);

    // Ops listener first, before any table exists — exactly the serve
    // startup order, so probes during "recovery" see 503.
    let state = OpsState::new();
    let ops = start_ops("127.0.0.1:0", Arc::clone(&state)).expect("bind ops");
    let ops_addr = ops.local_addr().to_string();

    let (st, body) = http_get(&ops_addr, "/readyz");
    assert_eq!(st, 503, "not ready before the table is open: {body}");
    assert!(body.contains("starting"), "reason names the state: {body}");
    assert_eq!(http_get(&ops_addr, "/healthz").0, 200, "alive while starting");

    // Table opens, data path comes up, readiness flips true.
    let table = Arc::new(Hdnh::new(HdnhParams::for_capacity(4_000)));
    state.set_table(&table);
    let handle = start_with_state(
        table,
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::clone(&state),
    )
    .expect("bind data port");
    state.set_ready();

    let (st, body) = http_get(&ops_addr, "/readyz");
    assert_eq!(st, 200, "ready after startup: {body}");

    // Generate some traffic so /metrics and /varz carry real numbers.
    let mut c = RespClient::connect(handle.local_addr().to_string()).expect("connect");
    for i in 0..50u64 {
        assert_eq!(c.set(i, i).unwrap(), Ok(()));
    }
    assert_eq!(c.get(7).unwrap(), Some(7));

    let (st, metrics) = http_get(&ops_addr, "/metrics");
    assert_eq!(st, 200);
    assert!(metrics.contains("# TYPE hdnh_net_cmd_latency_hist_ns histogram"));
    assert!(metrics.contains("hdnh_events_total{"), "counters exported");

    let (st, varz) = http_get(&ops_addr, "/varz");
    assert_eq!(st, 200);
    assert!(varz.contains("\"ready\":true"), "varz readiness: {varz}");
    assert!(varz.contains("\"backend\":\"heap\""), "varz backend: {varz}");
    assert!(varz.contains("\"records\":50"), "varz table stats: {varz}");
    assert!(varz.contains("\"metrics\":{"), "varz embeds the registry");

    let (st, trace) = http_get(&ops_addr, "/trace");
    assert_eq!(st, 200);
    assert!(trace.starts_with("{\"anchor_unix_ns\":"), "trace shape: {trace}");
    assert!(trace.contains("\"what\":\"ready\""), "ready milestone: {trace}");

    assert_eq!(http_get(&ops_addr, "/nope").0, 404);

    // INFO carries the same identity and readiness fields in-band.
    let info = match c.call(&[b"INFO"]).unwrap() {
        hdnh_server::Reply::Bulk(b) => String::from_utf8(b).unwrap(),
        other => panic!("INFO reply: {other:?}"),
    };
    for field in [
        "version:",
        "git_sha:",
        "uptime_seconds:",
        "backend:heap",
        "ready:1",
        "draining:0",
    ] {
        assert!(info.contains(field), "INFO missing {field}: {info}");
    }
    drop(c);

    // Drain begins: readyz flips false immediately, healthz stays true.
    handle.shutdown();
    let (st, body) = http_get(&ops_addr, "/readyz");
    assert_eq!(st, 503, "draining must fail readiness: {body}");
    assert!(body.contains("draining"), "reason names the drain: {body}");
    assert_eq!(http_get(&ops_addr, "/healthz").0, 200, "alive while draining");
    let (_, trace) = http_get(&ops_addr, "/trace");
    assert!(trace.contains("\"kind\":\"drain_begin\""), "drain event: {trace}");
    handle.join();
    ops.stop();
    obs::set_enabled(false);
    obs::trace::reset();
}

#[test]
fn forced_resize_under_live_traffic_lands_in_the_timeline() {
    let _g = lock();
    obs::reset();
    obs::trace::reset();
    obs::set_enabled(true);
    // 1 ns thresholds: every op/command is a slow exemplar, guaranteeing
    // the timeline interleaves slow-op events with the resize phases.
    obs::trace::set_slow_op_threshold_ns(1);
    obs::trace::set_slow_cmd_threshold_ns(1);

    let state = OpsState::new();
    let ops = start_ops("127.0.0.1:0", Arc::clone(&state)).expect("bind ops");
    // Undersized on purpose: the SET stream below must outgrow it.
    let table = Arc::new(Hdnh::new(HdnhParams::for_capacity(128)));
    state.set_table(&table);
    let handle = start_with_state(
        Arc::clone(&table),
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::clone(&state),
    )
    .expect("bind data port");
    state.set_ready();

    let mut c = RespClient::connect(handle.local_addr().to_string()).expect("connect");
    for i in 0..2_000u64 {
        assert_eq!(c.set(i, i * 3).unwrap(), Ok(()), "set {i}");
    }
    assert!(table.resize_count() >= 1, "load must have forced a resize");
    drop(c);

    let (st, trace) = http_get(&ops.local_addr().to_string(), "/trace");
    assert_eq!(st, 200);
    for phase in ["resize_allocate", "resize_rehash", "resize_swap"] {
        assert!(
            trace.contains(&format!("\"kind\":\"phase_enter\",\"what\":\"{phase}\"")),
            "timeline missing enter of {phase}"
        );
        assert!(
            trace.contains(&format!("\"kind\":\"phase_exit\",\"what\":\"{phase}\"")),
            "timeline missing exit of {phase}"
        );
    }
    assert!(
        trace.contains("\"kind\":\"slow_cmd\""),
        "timeline must carry slow command exemplars"
    );

    // The same facts, structurally: the resize phases and slow exemplars
    // interleave in one monotonic timeline.
    let events = obs::trace::drain();
    assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    let slow = events
        .iter()
        .filter(|e| matches!(e.kind, obs::trace::EventKind::SlowCmd | obs::trace::EventKind::SlowOp))
        .count();
    assert!(slow >= 1, "at least one slow exemplar recorded");
    // Slowlog counters moved with the exemplars.
    assert!(obs::snapshot().total_slowlog() >= 1);

    obs::trace::set_slow_op_threshold_ns(0);
    obs::trace::set_slow_cmd_threshold_ns(0);
    handle.shutdown_and_join();
    ops.stop();
    obs::set_enabled(false);
    obs::trace::reset();
    obs::reset();
}
