//! Idle connections must be *free*: a parked connection's only scheduled
//! wakeup is its idle deadline (30 s out), so an event loop hosting any
//! number of quiet connections sleeps in `epoll_wait` the whole time.
//! This test pins that down with the `net_spurious_wakeups` counter —
//! the reactor increments it whenever a loop iteration finds no events,
//! no due timers, and no waker signal.
//!
//! Kept in its own integration-test binary so the process-global obs
//! registry is not shared with other network tests.

use std::sync::Arc;
use std::time::Duration;

use hdnh::{Hdnh, HdnhParams};
use hdnh_obs as obs;
use hdnh_server::{start, RespClient, ServerConfig};

#[test]
fn idle_connections_cost_no_wakeups() {
    obs::set_enabled(true);

    let params = HdnhParams::builder()
        .capacity(10_000)
        .build()
        .expect("default test params are valid");
    let table = Arc::new(Hdnh::new(params));
    let cfg = ServerConfig::builder()
        .threads(2)
        .max_conns(256)
        .build()
        .unwrap();
    let handle = start(table, "127.0.0.1:0", cfg).expect("bind loopback");
    let addr = handle.local_addr().to_string();

    // Park a fleet of connections: one PING each to get them registered
    // and past any accept-path churn, then silence.
    let mut conns: Vec<RespClient> = Vec::new();
    for _ in 0..64 {
        let mut c = RespClient::connect(&addr).expect("connect");
        c.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        assert!(c.ping().unwrap());
        conns.push(c);
    }

    // Everything is settled; from here on the loops should sleep. The
    // old implementation polled every parked socket on a 100 ms tick —
    // ~10 wakeups per connection over this window. The reactor schedules
    // nothing before the 30 s idle deadlines.
    let before = obs::snapshot();
    std::thread::sleep(Duration::from_millis(500));
    let spurious = obs::snapshot()
        .since(&before)
        .counter(obs::Counter::NetSpuriousWakeup);
    assert!(
        spurious <= 2,
        "64 idle connections over 500ms caused {spurious} spurious wakeups; \
         idle connections must not schedule work"
    );

    // The parked connections are still live, not silently dropped.
    for c in conns.iter_mut() {
        assert!(c.ping().unwrap(), "idle connection must stay usable");
    }

    drop(conns);
    handle.shutdown_and_join();
}
