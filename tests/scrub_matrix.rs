//! Injected-corruption matrix for the media-error layer (DESIGN.md §10).
//!
//! Drives persistent record corruption (in-place media decay via
//! `Hdnh::corrupt_record_for_test`) and transient read corruption (the
//! `nvm.read` corruption hook) against the scrub walk, the read path, and
//! the recovery scan, checking the core contracts:
//!
//! * N injected (detectable) corruptions → a scrub reports exactly N
//!   detections, and `verify_integrity_report` is clean afterwards;
//! * damaged bytes are never served to a caller — hot-backed slots are
//!   repaired in place, the rest quarantined;
//! * a transient (one-shot) read corruption heals without repairing or
//!   quarantining anything;
//! * the whole matrix runs without a single library panic.
//!
//! The fault/corruption registry is process-global, so every test in this
//! binary serializes on [`GUARD`]; the binary itself gives the matrix a
//! process of its own.

use std::sync::Mutex;

use hdnh::nvtable::checksum6;
use hdnh::{Hdnh, HdnhParams};
use hdnh_common::{Key, Value, KEY_LEN};
use hdnh_nvm::fault;
use hdnh_nvm::{CorruptionKind, CorruptionPlan};
use hdnh_obs as obs;

/// Serializes tests: corruption plans and the obs registry are global.
static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn k(id: u64) -> Key {
    Key::from_u64(id)
}

fn v(id: u64) -> Value {
    Value::from_u64(id)
}

fn small_params(hot: bool) -> HdnhParams {
    HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .enable_hot_table(hot)
        .hot_capacity_ratio(2.0)
        .build()
        .unwrap()
}

/// XORs `mask` into one byte of `key`'s persisted record, retrying with a
/// stronger mask on the (1/128) digest collision so the damage is always
/// detectable.
fn inject(t: &Hdnh, key: &Key, byte: usize, mask: u8) {
    let mut m = mask;
    loop {
        match t.corrupt_record_for_test(key, byte, m) {
            None => panic!("key has no live NVM slot"),
            Some(true) => return,
            // Collided in the 7-bit digest: flip one more bit and retry
            // (the retry XORs on top of the previous damage).
            Some(false) => m = m.rotate_left(1) | m,
        }
    }
}

fn verify_clean(t: &Hdnh) {
    let (reports, _) = t.verify_integrity_report();
    for r in &reports {
        assert!(r.ok, "invariant {} failed: {:?}", r.name, r.violations);
    }
}

#[test]
fn scrub_reports_exactly_n_detections_and_quarantines_without_hot() {
    let _g = lock();
    let t = Hdnh::new(small_params(false));
    for i in 0..120 {
        t.insert(&k(i), &v(i + 1000)).unwrap();
    }
    let damaged: Vec<u64> = vec![3, 17, 42, 77, 101, 119];
    for (n, &id) in damaged.iter().enumerate() {
        // Spread the damage across key and value bytes.
        let byte = if n % 2 == 0 { 1 + n } else { KEY_LEN + n };
        inject(&t, &k(id), byte, 0x20);
    }
    let report = t.scrub();
    assert_eq!(report.scanned, 120, "{report:?}");
    assert_eq!(report.detected, damaged.len(), "{report:?}");
    assert_eq!(report.repaired, 0, "no hot table — nothing to repair");
    assert_eq!(report.quarantined, damaged.len(), "{report:?}");
    assert_eq!(report.errors.len(), damaged.len());
    assert!(!report.clean());
    // Quarantined slots are gone; the rest are intact.
    assert_eq!(t.len(), 120 - damaged.len());
    for i in 0..120 {
        let got = t.get(&k(i)).unwrap().map(|val| val.as_u64());
        if damaged.contains(&i) {
            assert_eq!(got, None, "key {i} must not be served after quarantine");
        } else {
            assert_eq!(got, Some(i + 1000), "key {i}");
        }
    }
    verify_clean(&t);
    // A second pass over the healed table is clean.
    let again = t.scrub();
    assert!(again.clean(), "{again:?}");
    assert_eq!(again.scanned, 120 - damaged.len());
}

#[test]
fn scrub_repairs_every_hot_backed_slot() {
    let _g = lock();
    let t = Hdnh::new(small_params(true));
    for i in 0..100 {
        t.insert(&k(i), &v(i + 7000)).unwrap();
    }
    // Value-byte damage on keys the hot table still holds (capacity ratio
    // 2.0 keeps every insert resident).
    let damaged = [5u64, 25, 50, 75, 99];
    for &id in &damaged {
        inject(&t, &k(id), KEY_LEN + 2, 0x40);
    }
    let report = t.scrub();
    assert_eq!(report.detected, damaged.len(), "{report:?}");
    assert_eq!(report.repaired, damaged.len(), "{report:?}");
    assert_eq!(report.quarantined, 0, "{report:?}");
    assert_eq!(t.len(), 100);
    for i in 0..100 {
        assert_eq!(t.get(&k(i)).unwrap().map(|val| val.as_u64()), Some(i + 7000), "key {i}");
    }
    verify_clean(&t);
    assert!(t.scrub().clean());
}

#[test]
fn read_path_never_serves_damaged_bytes() {
    let _g = lock();
    let t = Hdnh::new(small_params(false));
    for i in 0..60 {
        t.insert(&k(i), &v(i + 400)).unwrap();
    }
    inject(&t, &k(30), KEY_LEN + 4, 0x08);
    // The damaged value must never reach a caller: the read detects the
    // mismatch, finds no hot copy, quarantines, and reports a miss.
    assert_eq!(t.get(&k(30)).unwrap(), None);
    assert_eq!(t.len(), 59);
    verify_clean(&t);
    assert!(t.scrub().clean(), "read path already quarantined the slot");
}

#[test]
fn recovery_scan_drops_damaged_records() {
    let _g = lock();
    let params = small_params(false);
    let t = Hdnh::new(params.clone());
    for i in 0..80 {
        t.insert(&k(i), &v(i + 300)).unwrap();
    }
    inject(&t, &k(10), 2, 0x10);
    inject(&t, &k(60), KEY_LEN + 1, 0x10);
    let pool = t.into_pool();
    let r = Hdnh::recover(params, pool, 2);
    // The rebuild scan quarantines both damaged slots: they are absent
    // from the recovered count, the OCF, and the hot structures.
    assert_eq!(r.len(), 78);
    assert_eq!(r.get(&k(10)).unwrap(), None);
    assert_eq!(r.get(&k(60)).unwrap(), None);
    assert_eq!(r.get(&k(11)).unwrap().map(|val| val.as_u64()), Some(311));
    verify_clean(&r);
    assert!(r.scrub().clean());
}

#[test]
fn transient_read_corruption_heals_without_losing_the_record() {
    let _g = lock();
    obs::set_enabled(true);
    let t = Hdnh::new(small_params(false));
    for i in 0..40 {
        t.insert(&k(i), &v(i + 900)).unwrap();
    }
    // A one-shot corruption of the next record read: the bytes in NVM stay
    // clean, only the returned buffer is falsified. The read path detects
    // the mismatch, re-reads under the slot lock, sees clean bytes, and
    // heals — nothing is repaired or quarantined.
    let mut healed = false;
    for seed in 1..=8u64 {
        let before = obs::snapshot();
        fault::arm_corruption(CorruptionPlan {
            site: "nvm.read".into(),
            hit: 1,
            kind: CorruptionKind::BitFlip,
            mask: 0x40,
            seed,
        });
        let got = t.get(&k(20)).unwrap().map(|val| val.as_u64());
        let fired = fault::corruption_fired().is_some();
        fault::disarm_corruption();
        assert!(fired, "plan must fire on the record read (seed {seed})");
        let d = obs::snapshot().since(&before);
        if d.counter(obs::Counter::CorruptionDetected) == 0 {
            // 1/128 digest collision: the flip slipped past the checksum.
            // Deterministic per seed — try the next one.
            continue;
        }
        assert_eq!(
            d.counter(obs::Counter::CorruptionRepaired),
            0,
            "transient damage must not trigger a rewrite"
        );
        assert_eq!(
            d.counter(obs::Counter::CorruptionQuarantined),
            0,
            "transient damage must not drop the record"
        );
        assert_eq!(got, Some(920), "the retry must serve the clean bytes");
        healed = true;
        break;
    }
    assert!(healed, "eight distinct seeds all collided in a 7-bit digest");
    assert_eq!(t.len(), 40);
    verify_clean(&t);
    assert!(t.scrub().clean(), "media was never actually damaged");
}

#[test]
fn torn_line_and_poison_reads_are_detected_or_missed_never_forged() {
    let _g = lock();
    let t = Hdnh::new(small_params(false));
    for i in 0..40 {
        t.insert(&k(i), &v(i + 100)).unwrap();
    }
    for (kind, seed) in [(CorruptionKind::Poison, 11u64), (CorruptionKind::TornLine, 12)] {
        fault::arm_corruption(CorruptionPlan {
            site: "nvm.read".into(),
            hit: 1,
            kind,
            mask: 0,
            seed,
        });
        let got = t.get(&k(7)).unwrap().map(|val| val.as_u64());
        let fired = fault::corruption_fired().is_some();
        fault::disarm_corruption();
        assert!(fired, "{kind:?} plan must fire");
        // Healed (correct value) or a checksum-collision miss — but never
        // a fabricated value.
        assert!(
            got == Some(107) || got.is_none(),
            "{kind:?} produced a forged value: {got:?}"
        );
    }
    assert_eq!(t.len(), 40);
    verify_clean(&t);
}

#[test]
fn checksum_is_deterministic_and_seven_bit() {
    let _g = lock();
    // Spot anchor so the on-media format can't drift silently: the digest
    // of the all-zero record is a fixed constant.
    let zero = [0u8; 31];
    let d = checksum6(&zero);
    assert!(d < 128);
    assert_eq!(d, checksum6(&zero));
    let mut one = zero;
    one[30] = 1;
    assert_ne!(checksum6(&one), d, "single trailing-byte flip must change the digest");
}
