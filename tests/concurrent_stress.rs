//! Concurrency storm for the lock-free read path (DESIGN.md §11).
//!
//! N writer threads and M reader threads hammer one table hard enough to
//! force several resizes mid-flight, across both disjoint per-writer key
//! ranges and a deliberately colliding shared range. Checks:
//!
//! * per-key linearizable visibility — a reader never observes a value
//!   that was not written for that exact key, and once a writer's ack for
//!   version v is globally published, readers never travel back before v;
//! * zero lost updates — after the storm every key holds exactly the last
//!   acknowledged version its owning writer wrote;
//! * the structure survives: resizes really happened, and
//!   `verify_integrity_report` is clean once the dust settles.
//!
//! Values always encode (key id, version) through `KeySpace`, so a torn or
//! foreign read is detectable on sight rather than by log reconstruction.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hdnh::{Hdnh, HdnhParams};
use hdnh_common::rng::XorShift64Star;
use hdnh_ycsb::KeySpace;

const WRITERS: usize = 3;
const READERS: usize = 3;
/// Disjoint range: each writer owns ids [tid * STRIDE, tid * STRIDE + OWNED).
const STRIDE: u64 = 1_000_000;
const OWNED: u64 = 400;
/// Colliding range: every writer upserts ids [0, SHARED) via update-or-insert.
const SHARED: u64 = 64;

fn small_table() -> Hdnh {
    // Tiny segments so the fill factor crosses the resize threshold several
    // times while the storm is running.
    Hdnh::new(
        HdnhParams::builder()
            .segment_bytes(1024)
            .initial_bottom_segments(2)
            .build()
            .unwrap(),
    )
}

/// Insert-or-update without the `HashIndex` trait: exercises the typed API.
fn upsert(t: &Hdnh, ks: &KeySpace, id: u64, version: u32) {
    let key = ks.key(id);
    let val = ks.value(id, version);
    match t.update(&key, &val) {
        Ok(()) => {}
        Err(hdnh::HdnhError::KeyNotFound) => match t.insert(&key, &val) {
            Ok(()) | Err(hdnh::HdnhError::DuplicateKey) => {
                // Lost the insert race: someone else created the key; the
                // retry loop below will land the update.
                if t.update(&key, &val).is_err() {
                    // Raced with a concurrent remove; acceptable for the
                    // shared range (removes only happen there).
                }
            }
            Err(e) => panic!("upsert insert failed: {e}"),
        },
        Err(e) => panic!("upsert update failed: {e}"),
    }
}

/// Writers own disjoint ranges and publish a per-key high-water mark;
/// readers check they never see a version below the published floor.
#[test]
fn storm_disjoint_ranges_no_lost_updates() {
    let t = Arc::new(small_table());
    let ks = KeySpace::default();
    let stop = AtomicBool::new(false);
    // floor[w][k] = highest version writer w has ACKED for its k-th key.
    let floors: Vec<Vec<AtomicU64>> = (0..WRITERS)
        .map(|_| (0..OWNED).map(|_| AtomicU64::new(0)).collect())
        .collect();
    let base_resizes = t.resize_count();

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let t = Arc::clone(&t);
            let floors = &floors;
            let stop = &stop;
            s.spawn(move || {
                let base = w as u64 * STRIDE;
                // Round 0 inserts everything, later rounds update in place.
                for round in 1..=40u32 {
                    for i in 0..OWNED {
                        let id = base + i;
                        let val = ks.value(id, round);
                        if round == 1 {
                            t.insert(&ks.key(id), &val).expect("disjoint insert");
                        } else {
                            t.update(&ks.key(id), &val).expect("disjoint update");
                        }
                        // Publish the ack AFTER the op returns: from here on
                        // no reader may see a version below `round`.
                        floors[w][i as usize].store(round as u64, Ordering::Release);
                    }
                }
                stop.store(true, Ordering::Release);
            });
        }
        for r in 0..READERS {
            let t = Arc::clone(&t);
            let floors = &floors;
            let stop = &stop;
            s.spawn(move || {
                let mut rng = XorShift64Star::new(0xBEEF ^ r as u64);
                while !stop.load(Ordering::Acquire) {
                    let w = (rng.next_below(WRITERS as u32)) as usize;
                    let i = rng.next_u64() % OWNED;
                    let id = w as u64 * STRIDE + i;
                    // Sample the floor BEFORE the read: the read must
                    // return at least this version (monotone visibility).
                    let floor = floors[w][i as usize].load(Ordering::Acquire);
                    match t.get(&ks.key(id)).expect("reader hit a typed error") {
                        None => assert_eq!(
                            floor, 0,
                            "key {id}: acked at version {floor} but read as absent"
                        ),
                        Some(v) => {
                            let got = ks
                                .validate(id, &v)
                                .unwrap_or_else(|| panic!("key {id}: foreign/torn value"));
                            assert!(
                                got as u64 >= floor,
                                "key {id}: went back in time ({got} < floor {floor})"
                            );
                        }
                    }
                }
            });
        }
    });

    // Zero lost updates: every key ends at its writer's final version.
    for w in 0..WRITERS {
        for i in 0..OWNED {
            let id = w as u64 * STRIDE + i;
            let v = t
                .get(&ks.key(id))
                .unwrap()
                .unwrap_or_else(|| panic!("key {id} vanished"));
            assert_eq!(ks.validate(id, &v), Some(40), "key {id} final version");
        }
    }
    assert_eq!(t.len(), WRITERS * OWNED as usize);
    assert!(
        t.resize_count() > base_resizes,
        "the storm was supposed to force at least one resize"
    );
    let (reports, _) = t.verify_integrity_report();
    for rep in &reports {
        assert!(rep.ok, "invariant {} failed: {:?}", rep.name, rep.violations);
    }
}

/// All writers collide on one small range with mixed upserts and removes;
/// readers only require per-key value integrity (any observed value was
/// genuinely written for that key by someone).
#[test]
fn storm_colliding_range_values_stay_coherent() {
    let t = Arc::new(small_table());
    let ks = KeySpace::default();
    let stop = AtomicBool::new(false);
    let base_resizes = t.resize_count();

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let t = Arc::clone(&t);
            let stop = &stop;
            s.spawn(move || {
                let mut rng = XorShift64Star::new(0xD00D ^ w as u64);
                for step in 0..12_000u32 {
                    let id = rng.next_u64() % SHARED;
                    if rng.next_below(10) == 0 {
                        let _ = t.remove(&ks.key(id)).expect("remove must not error");
                    } else {
                        upsert(&t, &ks, id, step);
                    }
                    // Background filler into a private range keeps the load
                    // factor climbing so resizes overlap the collisions.
                    let fid = 10_000 + w as u64 * STRIDE + step as u64;
                    let _ = t.insert(&ks.key(fid), &ks.value(fid, 0));
                }
                stop.store(true, Ordering::Release);
            });
        }
        for r in 0..READERS {
            let t = Arc::clone(&t);
            let stop = &stop;
            s.spawn(move || {
                let mut rng = XorShift64Star::new(0xFEED ^ r as u64);
                while !stop.load(Ordering::Acquire) {
                    let id = rng.next_u64() % SHARED;
                    if let Some(v) = t.get(&ks.key(id)).expect("reader hit a typed error") {
                        assert!(
                            ks.validate(id, &v).is_some(),
                            "key {id}: value bytes do not belong to this key"
                        );
                    }
                }
            });
        }
    });

    assert!(
        t.resize_count() > base_resizes,
        "filler inserts were supposed to force at least one resize"
    );
    let (reports, _) = t.verify_integrity_report();
    for rep in &reports {
        assert!(rep.ok, "invariant {} failed: {:?}", rep.name, rep.violations);
    }
    // The table is still fully usable after the storm.
    let probe = 99 * STRIDE;
    t.insert(&ks.key(probe), &ks.value(probe, 7)).unwrap();
    assert_eq!(ks.validate(probe, &t.get(&ks.key(probe)).unwrap().unwrap()), Some(7));
    assert!(t.remove(&ks.key(probe)).unwrap());
}
