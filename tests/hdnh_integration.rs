//! End-to-end HDNH integration tests: YCSB workloads with value
//! validation, resize under concurrent load, media-access invariants, and
//! the full shutdown/recover lifecycle against generated workload state.

use std::sync::Arc;

use hdnh::{Hdnh, HdnhParams, HotPolicy, SyncMode};
use hdnh_nvm::NvmOptions;
use hdnh_ycsb::{generate_ops, KeySpace, Op, WorkloadSpec};

fn small_params() -> HdnhParams {
    HdnhParams::builder()
        .segment_bytes(2048)
        .initial_bottom_segments(2)
        .build()
        .unwrap()
}

/// Replays a generated workload and tracks the expected version of every
/// id so each read can be validated byte-for-byte.
fn replay_validated(t: &Hdnh, ks: &KeySpace, preload: u64, ops: &[Op]) {
    for id in 0..preload {
        t.insert(&ks.key(id), &ks.value(id, 0)).unwrap();
    }
    let mut versions: std::collections::HashMap<u64, u32> = Default::default();
    let mut deleted: std::collections::HashSet<u64> = Default::default();
    for op in ops {
        match op {
            Op::Read(id) => {
                if deleted.contains(id) {
                    assert!(t.get(&ks.key(*id)).unwrap().is_none(), "deleted id {id} readable");
                } else {
                    let v = t.get(&ks.key(*id)).unwrap().unwrap_or_else(|| panic!("missing id {id}"));
                    let expected = versions.get(id).copied().unwrap_or(0);
                    assert_eq!(ks.validate(*id, &v), Some(expected), "stale/torn id {id}");
                }
            }
            Op::ReadAbsent(id) => {
                assert!(t.get(&ks.negative_key(*id)).unwrap().is_none());
            }
            Op::Insert(id) => {
                t.insert(&ks.key(*id), &ks.value(*id, 0)).unwrap();
            }
            Op::Update(id, seq) | Op::ReadModifyWrite(id, seq) => {
                if !deleted.contains(id) {
                    t.update(&ks.key(*id), &ks.value(*id, *seq)).unwrap();
                    versions.insert(*id, *seq);
                }
            }
            Op::Delete(id) => {
                assert!(t.remove(&ks.key(*id)).unwrap(), "delete of missing id {id}");
                deleted.insert(*id);
            }
        }
    }
}

#[test]
fn ycsb_a_with_full_value_validation() {
    let t = Hdnh::new(small_params());
    let ks = KeySpace::default();
    let ops = generate_ops(&WorkloadSpec::ycsb_a(), 2_000, 2_000, 20_000, 1);
    replay_validated(&t, &ks, 2_000, &ops);
}

#[test]
fn mixed_workload_with_deletes_and_negatives() {
    let spec = WorkloadSpec {
        read: 0.3,
        read_absent: 0.1,
        insert: 0.3,
        update: 0.2,
        rmw: 0.0,
        delete: 0.1,
        mix: hdnh_ycsb::Mix::Uniform,
    };
    let t = Hdnh::new(small_params());
    let ks = KeySpace::default();
    let ops = generate_ops(&spec, 3_000, 3_000, 20_000, 2);
    replay_validated(&t, &ks, 3_000, &ops);
}

#[test]
fn background_mode_ycsb_under_threads() {
    let t = Arc::new(Hdnh::new(HdnhParams {
        sync_mode: SyncMode::Background,
        background_writers: 2,
        ..small_params()
    }));
    let ks = KeySpace::default();
    for id in 0..4_000u64 {
        t.insert(&ks.key(id), &ks.value(id, 0)).unwrap();
    }
    // Disjoint writer ranges + validating readers.
    std::thread::scope(|s| {
        for tid in 0..2u64 {
            let t = Arc::clone(&t);
            s.spawn(move || {
                for seq in 1..=200u32 {
                    for id in (tid * 2_000)..(tid * 2_000 + 50) {
                        t.update(&ks.key(id), &ks.value(id, seq)).unwrap();
                    }
                }
            });
        }
        for _ in 0..2 {
            let t = Arc::clone(&t);
            s.spawn(move || {
                for round in 0..10_000u64 {
                    let id = round % 4_000;
                    if let Some(v) = t.get(&ks.key(id)).unwrap() {
                        assert!(
                            ks.validate(id, &v).is_some(),
                            "torn value for id {id}: {v:?}"
                        );
                    }
                }
            });
        }
    });
}

#[test]
fn several_resizes_under_concurrent_inserts_with_validation() {
    let t = Arc::new(Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(1)
        .build()
        .unwrap()));
    let ks = KeySpace::default();
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let t = Arc::clone(&t);
            s.spawn(move || {
                for i in 0..4_000u64 {
                    let id = tid * 1_000_000 + i;
                    t.insert(&ks.key(id), &ks.value(id, 0)).unwrap();
                    if i % 97 == 0 {
                        let v = t.get(&ks.key(id)).unwrap().expect("own insert visible");
                        assert_eq!(ks.validate(id, &v), Some(0));
                    }
                }
            });
        }
    });
    assert!(t.resize_count() >= 2, "expected multiple resizes, got {}", t.resize_count());
    assert_eq!(t.len(), 16_000);
    for tid in 0..4u64 {
        for i in 0..4_000u64 {
            let id = tid * 1_000_000 + i;
            let v = t.get(&ks.key(id)).unwrap().unwrap_or_else(|| panic!("lost id {id}"));
            assert_eq!(ks.validate(id, &v), Some(0), "id {id}");
        }
    }
}

#[test]
fn shutdown_recover_roundtrip_preserves_workload_state() {
    let params = HdnhParams {
        nvm: NvmOptions::strict(),
        ..small_params()
    };
    let t = Hdnh::new(params.clone());
    let ks = KeySpace::default();
    let spec = WorkloadSpec {
        read: 0.2,
        read_absent: 0.0,
        insert: 0.4,
        update: 0.3,
        rmw: 0.0,
        delete: 0.1,
        mix: hdnh_ycsb::Mix::ScrambledZipfian { s: 0.99 },
    };
    let ops = generate_ops(&spec, 2_000, 2_000, 10_000, 3);
    replay_validated(&t, &ks, 2_000, &ops);
    let expected_len = t.len();

    // Crash, recover, and verify the recovered table serves the same state.
    let pool = t.into_pool();
    pool.crash(0xABCD);
    let r = Hdnh::recover(params, pool, 3);
    assert_eq!(r.len(), expected_len);

    // Recompute expected state from the op stream and audit.
    let mut versions: std::collections::HashMap<u64, u32> = Default::default();
    let mut live: std::collections::HashSet<u64> = (0..2_000).collect();
    for op in &ops {
        match op {
            Op::Insert(id) => {
                live.insert(*id);
            }
            Op::Update(id, seq) | Op::ReadModifyWrite(id, seq) if live.contains(id) => {
                versions.insert(*id, *seq);
            }
            Op::Delete(id) => {
                live.remove(id);
                versions.remove(id);
            }
            _ => {}
        }
    }
    assert_eq!(r.len(), live.len());
    for &id in &live {
        let v = r.get(&ks.key(id)).unwrap().unwrap_or_else(|| panic!("lost id {id}"));
        let expected = versions.get(&id).copied().unwrap_or(0);
        assert_eq!(ks.validate(id, &v), Some(expected), "id {id}");
    }
}

#[test]
fn search_path_never_writes_nvm_even_under_skew() {
    // The §3.6 claim at workload level: a pure-read phase (after warm-up)
    // performs zero NVM writes/flushes regardless of skew.
    let t = Hdnh::new(small_params());
    let ks = KeySpace::default();
    for id in 0..5_000u64 {
        t.insert(&ks.key(id), &ks.value(id, 0)).unwrap();
    }
    let ops = generate_ops(
        &WorkloadSpec::search_only(hdnh_ycsb::Mix::ScrambledZipfian { s: 1.22 }),
        5_000,
        5_000,
        20_000,
        4,
    );
    let before = t.nvm_stats();
    for op in &ops {
        if let Op::Read(id) = op {
            t.get(&ks.key(*id)).unwrap().unwrap();
        }
    }
    let delta = t.nvm_stats().since(&before);
    assert_eq!(delta.writes, 0);
    assert_eq!(delta.flushes, 0);
    assert_eq!(delta.fences, 0);
}

#[test]
fn lru_policy_full_lifecycle() {
    let t = Hdnh::new(HdnhParams {
        hot_policy: HotPolicy::Lru,
        hot_capacity_ratio: 0.1, // force heavy eviction traffic
        ..small_params()
    });
    let ks = KeySpace::default();
    let ops = generate_ops(&WorkloadSpec::ycsb_a(), 3_000, 3_000, 15_000, 5);
    replay_validated(&t, &ks, 3_000, &ops);
}

#[test]
fn tiny_hot_table_still_correct() {
    // Pathologically small cache: every put evicts.
    let t = Hdnh::new(HdnhParams {
        hot_capacity_ratio: 0.01,
        ..small_params()
    });
    let ks = KeySpace::default();
    for id in 0..2_000u64 {
        t.insert(&ks.key(id), &ks.value(id, 0)).unwrap();
    }
    for id in 0..2_000u64 {
        let v = t.get(&ks.key(id)).unwrap().unwrap();
        assert_eq!(ks.validate(id, &v), Some(0));
    }
}
