//! Cross-crate tests of the NVM substrate's semantics as the hash tables
//! rely on them: persistence ordering, stats attribution, bandwidth wiring
//! and crash behaviour observed *through* a table rather than the raw
//! region API (which `hdnh-nvm`'s unit tests already cover).

use hdnh::{Hdnh, HdnhParams};
use hdnh_common::{Key, Value};
use hdnh_nvm::{BandwidthLimiter, BandwidthModel, LatencyModel, NvmOptions, NvmRegion};
use std::sync::Arc;

#[test]
fn every_acknowledged_insert_leaves_no_at_risk_lines() {
    // Invariant: when an operation returns, everything it needed durable
    // has been flushed AND fenced — nothing is left to luck.
    let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .nvm(NvmOptions::strict())
        .build()
        .unwrap());
    for i in 0..500u64 {
        t.insert(&Key::from_u64(i), &Value::from_u64(i)).unwrap();
    }
    for i in 0..200u64 {
        t.update(&Key::from_u64(i), &Value::from_u64(i + 1)).unwrap();
    }
    for i in 400..500u64 {
        assert!(t.remove(&Key::from_u64(i)).unwrap());
    }
    let pool = t.into_pool();
    // A crash that loses EVERY unflushed line must still preserve all
    // acknowledged state — verified by the cruellest deterministic crash.
    pool.meta.crash_with(|_| false);
    pool.top.crash_with(|_| false);
    pool.bottom.crash_with(|_| false);
    let r = Hdnh::recover(
        HdnhParams::builder()
                .segment_bytes(1024)
                .initial_bottom_segments(2)
                .nvm(NvmOptions::strict())
                .build()
                .unwrap(),
        pool,
        2,
    );
    assert_eq!(r.len(), 400);
    for i in 0..200u64 {
        assert_eq!(r.get(&Key::from_u64(i)).unwrap().unwrap().as_u64(), i + 1);
    }
}

#[test]
fn stats_attribute_writes_to_write_path_only() {
    let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(2048)
        .initial_bottom_segments(2)
        .build()
        .unwrap());
    for i in 0..1_000u64 {
        t.insert(&Key::from_u64(i), &Value::from_u64(i)).unwrap();
    }
    let s = t.nvm_stats();
    // Insert path: ≥2 writes (record + header) and ≥2 flushes + 2 fences
    // per op, minus resize effects; sanity-check the orders of magnitude.
    assert!(s.writes >= 2_000, "writes {}", s.writes);
    assert!(s.flushes >= 2_000, "flushes {}", s.flushes);
    assert!(s.fences >= 2_000, "fences {}", s.fences);
}

#[test]
fn latency_model_slows_throughput_measurably() {
    // Same workload with and without latency injection: the injected run
    // must be slower (this is the knob the benchmarks depend on).
    // Amplified profile (20x AEP) so the injected time dominates debug-build
    // noise: 20k reads × ~4 µs ≈ 80 ms of injected latency.
    let run = |latency: bool| {
        let t = Hdnh::new(HdnhParams {
            nvm: NvmOptions {
                latency: if latency { LatencyModel::aep_scaled(20.0) } else { LatencyModel::off() },
                ..NvmOptions::fast()
            },
            enable_hot_table: false, // force NVM reads
            ..HdnhParams::for_capacity(20_000)
        });
        for i in 0..20_000u64 {
            t.insert(&Key::from_u64(i), &Value::from_u64(i)).unwrap();
        }
        let start = std::time::Instant::now();
        for i in 0..20_000u64 {
            assert!(t.get(&Key::from_u64(i)).unwrap().is_some());
        }
        start.elapsed()
    };
    let fast = run(false);
    let slow = run(true);
    assert!(
        slow > fast + std::time::Duration::from_millis(20),
        "latency model had no effect: fast {fast:?} vs aep {slow:?}"
    );
}

#[test]
fn shared_bandwidth_limiter_spans_regions() {
    // Two regions built from the same options share one limiter: traffic
    // through either region must charge the same token bucket. (Verified
    // structurally via the limiter's counters; the throttling behaviour
    // itself is covered by hdnh-nvm's timed unit tests.)
    let limiter = Arc::new(BandwidthLimiter::new(BandwidthModel {
        read_bytes_per_us: 1_000_000, // effectively unlimited: no stalls
        write_bytes_per_us: 1_000_000,
    }));
    let opts = NvmOptions {
        bandwidth: Some(Arc::clone(&limiter)),
        ..NvmOptions::fast()
    };
    let a = NvmRegion::new(64 * 1024, opts.clone());
    let b = NvmRegion::new(64 * 1024, opts);
    let mut buf = [0u8; 256];
    a.read_into(0, &mut buf); // 1 block
    a.read_into(300, &mut buf); // spans 2 blocks
    b.read_into(0, &mut buf); // 1 block via the *other* region
    assert_eq!(limiter.consumed_read_bytes(), 4 * 256);
    a.write_bytes(0, &[1u8; 64]); // 1 line
    b.write_bytes(0, &[1u8; 65]); // 2 lines
    assert_eq!(limiter.consumed_write_bytes(), 3 * 64);
}

#[test]
fn region_checks_bounds_from_table_layer() {
    // Indirect: a table sized for N records never trips region bounds even
    // at full load + resize (would panic).
    let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(512)
        .initial_bottom_segments(1)
        .build()
        .unwrap());
    for i in 0..5_000u64 {
        t.insert(&Key::from_u64(i), &Value::from_u64(i)).unwrap();
    }
    assert!(t.resize_count() > 0);
    assert_eq!(t.verify_integrity().unwrap(), 5_000);
}
