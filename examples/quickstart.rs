//! Quickstart: build an HDNH table, do the four operations, peek at the
//! DRAM/NVM split the paper is about.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hdnh::{Hdnh, HdnhParams};
use hdnh_common::{Key, Value};

fn main() {
    // Default parameters = the paper's configuration: 16 KB segments,
    // 256 B / 8-slot NVM buckets, 4-slot hot-table buckets, RAFL.
    let table = Hdnh::new(HdnhParams::builder().build().expect("defaults are valid"));

    // Insert a handful of records.
    for id in 0..1000u64 {
        table
            .insert(&Key::from_u64(id), &Value::from_u64(id * 10))
            .expect("insert");
    }
    println!("inserted 1000 records, load factor {:.2}", table.load_factor());

    // Point lookups: first read may touch NVM, repeats hit the DRAM hot
    // table.
    let k = Key::from_u64(42);
    assert_eq!(table.get(&k).unwrap().unwrap().as_u64(), 420);
    let before = table.nvm_stats();
    for _ in 0..1000 {
        assert_eq!(table.get(&k).unwrap().unwrap().as_u64(), 420);
    }
    let delta = table.nvm_stats().since(&before);
    println!(
        "1000 repeated reads of a hot key: {} NVM block reads (hot table absorbed the rest)",
        delta.read_blocks
    );

    // Update is out-of-place in NVM with a single atomic bitmap commit.
    table.update(&k, &Value::from_u64(421)).expect("update");
    assert_eq!(table.get(&k).unwrap().unwrap().as_u64(), 421);

    // Delete.
    assert!(table.remove(&k).unwrap());
    assert!(table.get(&k).unwrap().is_none());

    // Where does the memory live? Metadata in DRAM, records in NVM.
    println!(
        "OCF footprint: {} bytes of DRAM for {} records in NVM",
        table.ocf_footprint_bytes(),
        table.len()
    );

    // Persistence round-trip: shut down, recover, data is still there.
    let params = table.params().clone();
    let pool = table.into_pool();
    let recovered = Hdnh::recover(params, pool, 2);
    assert_eq!(recovered.len(), 999);
    assert_eq!(recovered.get(&Key::from_u64(7)).unwrap().unwrap().as_u64(), 70);
    println!("recovered table has {} records — quickstart OK", recovered.len());
}
