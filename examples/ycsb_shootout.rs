//! YCSB shootout: run the standard YCSB mixes (A, B, C, F) against all
//! four schemes and print a throughput matrix — a miniature of the paper's
//! evaluation you can rerun in seconds.
//!
//! ```text
//! cargo run --release --example ycsb_shootout [records] [ops] [threads]
//! ```

use hdnh::{Hdnh, HdnhParams, SyncMode};
use hdnh_baselines::{Cceh, CcehParams, LevelHash, LevelParams, PathHash, PathParams};
use hdnh_common::HashIndex;
use hdnh_nvm::NvmOptions;
use hdnh_ycsb::{generate_ops, KeySpace, Op, WorkloadSpec};

fn build_all(records: usize) -> Vec<Box<dyn HashIndex>> {
    let nvm = NvmOptions::bench();
    vec![
        Box::new(PathHash::new(PathParams {
            nvm: nvm.clone(),
            ..PathParams::for_capacity(records + records / 10)
        })),
        Box::new(LevelHash::new(LevelParams {
            nvm: nvm.clone(),
            ..LevelParams::for_capacity(records)
        })),
        Box::new(Cceh::new(CcehParams {
            nvm: nvm.clone(),
            ..CcehParams::for_capacity(records)
        })),
        Box::new(Hdnh::new(HdnhParams {
            nvm,
            sync_mode: SyncMode::Background,
            ..HdnhParams::for_capacity(records)
        })),
    ]
}

fn run(index: &dyn HashIndex, ks: &KeySpace, ops: &[Vec<Op>]) -> f64 {
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for stream in ops {
            s.spawn(move || {
                for op in stream {
                    match op {
                        Op::Read(id) => {
                            index.get(&ks.key(*id));
                        }
                        Op::ReadAbsent(id) => {
                            index.get(&ks.negative_key(*id));
                        }
                        Op::Insert(id) => {
                            let _ = index.insert(&ks.key(*id), &ks.value(*id, 0));
                        }
                        Op::Update(id, seq) => {
                            let _ = index.upsert(&ks.key(*id), &ks.value(*id, *seq));
                        }
                        Op::ReadModifyWrite(id, seq) => {
                            index.get(&ks.key(*id));
                            let _ = index.upsert(&ks.key(*id), &ks.value(*id, *seq));
                        }
                        Op::Delete(id) => {
                            index.remove(&ks.key(*id));
                        }
                    }
                }
            });
        }
    });
    let total: usize = ops.iter().map(Vec::len).sum();
    total as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let mut args = std::env::args().skip(1);
    let records: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let total_ops: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    let ks = KeySpace::default();
    let mixes: [(&str, WorkloadSpec); 4] = [
        ("YCSB-A (50r/50u)", WorkloadSpec::ycsb_a()),
        ("YCSB-B (95r/5u)", WorkloadSpec::ycsb_b()),
        ("YCSB-C (100r)", WorkloadSpec::ycsb_c()),
        ("YCSB-F (50r/50rmw)", WorkloadSpec::ycsb_f()),
    ];

    println!("YCSB shootout: {records} records, {total_ops} ops, {threads} threads (Mops/s)");
    println!("{:<20} {:>8} {:>8} {:>8} {:>8}", "workload", "PATH", "LEVEL", "CCEH", "HDNH");
    for (name, spec) in &mixes {
        let mut row = format!("{name:<20}");
        for index in build_all(records) {
            // Fresh table + preload per cell so mixes don't contaminate
            // each other.
            for id in 0..records as u64 {
                index.insert(&ks.key(id), &ks.value(id, 0)).expect("preload");
            }
            let streams: Vec<Vec<Op>> = (0..threads as u64)
                .map(|t| {
                    generate_ops(
                        spec,
                        records as u64,
                        records as u64 + t * (total_ops / threads) as u64,
                        total_ops / threads,
                        0xABC ^ t,
                    )
                })
                .collect();
            let mops = run(index.as_ref(), &ks, &streams);
            row.push_str(&format!(" {mops:>8.3}"));
        }
        println!("{row}");
    }
    println!("\nExpected: HDNH dominates the read-dominant rows (B, C) through the");
    println!("hot table; on update-heavy A/F it gives some of that back because its");
    println!("updates are out-of-place and crash-consistent (two persists + atomic");
    println!("bitmap swap) while the baselines overwrite in place without failure");
    println!("atomicity. The paper evaluates YCSB-A for tail latency (fig 15), not");
    println!("throughput — run fig15 to see where HDNH's concurrency design wins.");
}
