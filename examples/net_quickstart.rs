//! Network quickstart: an in-process `hdnh-server` plus a RESP client on
//! a loopback port — the same code path `hdnh-cli serve` and `netbench`
//! exercise, compressed into one file.
//!
//! ```text
//! cargo run --release --example net_quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use hdnh::{Hdnh, HdnhParams};
use hdnh_server::{start, RespClient, ServerConfig};

fn main() {
    hdnh_obs::set_enabled(true);

    // One shared table; the server's workers read it through the
    // lock-free epoch-pinned path, so the Arc is the only coupling.
    let table = Arc::new(Hdnh::new(
        HdnhParams::builder().capacity(100_000).build().expect("defaults are valid"),
    ));
    let handle = start(Arc::clone(&table), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let addr = handle.local_addr();
    println!("serving on {addr}");

    let mut c = RespClient::connect(addr).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");

    // Request/response...
    c.set(17, 42).expect("io").expect("set");
    println!("GET 17 -> {:?}", c.get(17).expect("io"));

    // ...and pipelining: queue a burst, flush once, then collect replies.
    for i in 0..1_000u64 {
        c.cmd(&[b"SET", i.to_string().as_bytes(), (i * 10).to_string().as_bytes()]);
    }
    c.flush().expect("flush");
    for _ in 0..1_000 {
        assert!(c.read_reply().expect("reply").is_ok());
    }
    println!("pipelined 1000 SETs in one burst");
    println!("MGET 1 2 3 -> {:?}", c.mget(&[1, 2, 3]).expect("io"));

    // The server and the in-process caller see the same table.
    use hdnh_common::Key;
    assert_eq!(table.get(&Key::from_u64(3)).unwrap().unwrap().as_u64(), 30);
    println!("in-process view agrees: key 3 -> 30");

    // INFO is served from the same state the CLI's `info` shows.
    println!("--- INFO ---\n{}", c.info().expect("info"));

    // Graceful drain: SHUTDOWN is acknowledged, in-flight frames finish,
    // then the workers exit.
    assert!(c.shutdown().expect("shutdown").is_ok());
    handle.join();
    println!("server drained cleanly");
}
