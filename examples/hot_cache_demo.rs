//! Hot-table deep dive: watch RAFL's hotmap state machine work, and see
//! how the hot table converts a skewed read workload from NVM traffic into
//! DRAM hits (the paper's §3.3 and figure 12, interactively).
//!
//! ```text
//! cargo run --release --example hot_cache_demo
//! ```

use hdnh::{Hdnh, HdnhParams, HotPolicy};
use hdnh_common::hash::KeyHashes;
use hdnh_common::{Key, Value};
use hdnh_nvm::NvmOptions;
use hdnh_ycsb::{KeyDist, KeySpace, Zipfian};

fn main() {
    // Part 1: the RAFL state machine on a single record.
    let t = Hdnh::new(HdnhParams::default());
    let k = Key::from_u64(7);
    t.insert(&k, &Value::from_u64(70)).unwrap();
    let hot = t.hot_table().unwrap();
    let h = KeyHashes::of(&k);
    println!(
        "after insert: cached={}, hot bit={:?}  (cold: 'has not been searched since it was added')",
        hot.is_hot(&k, h.h1, h.h2, h.fp).is_some(),
        hot.is_hot(&k, h.h1, h.h2, h.fp)
    );
    t.get(&k).unwrap();
    println!(
        "after one search: hot bit={:?}  (RAFL flips the hotmap bit on a hit)",
        hot.is_hot(&k, h.h1, h.h2, h.fp)
    );

    // Part 2: skewed reads — measure NVM block reads per search as skew
    // grows, with the hot table on and off.
    println!("\nNVM block reads per search under zipfian skew (100k records, 25% hot-table capacity):");
    println!("{:>6} {:>12} {:>12}", "s", "with hot", "without hot");
    let ks = KeySpace::default();
    const N: u64 = 100_000;
    const OPS: usize = 100_000;
    for s in [0.5, 0.9, 0.99, 1.22] {
        let mut cells = Vec::new();
        for enable_hot in [true, false] {
            let t = Hdnh::new(HdnhParams {
                enable_hot_table: enable_hot,
                nvm: NvmOptions::fast(),
                ..HdnhParams::for_capacity(N as usize)
            });
            for id in 0..N {
                t.insert(&ks.key(id), &ks.value(id, 0)).unwrap();
            }
            let mut dist = Zipfian::new(N, s);
            let mut rng = hdnh_common::rng::XorShift64Star::new(9);
            let before = t.nvm_stats();
            for _ in 0..OPS {
                let id = hdnh_common::rng::mix64(dist.next_id(&mut rng)) % N;
                t.get(&ks.key(id)).expect("present");
            }
            let delta = t.nvm_stats().since(&before);
            cells.push(delta.read_blocks as f64 / OPS as f64);
        }
        println!("{s:>6.2} {:>12.3} {:>12.3}", cells[0], cells[1]);
    }
    println!("(higher skew → the hot set fits the DRAM table → NVM reads vanish)");

    // Part 3: RAFL vs LRU footprint.
    let rafl = Hdnh::new(HdnhParams {
        hot_policy: HotPolicy::Rafl,
        ..HdnhParams::for_capacity(N as usize)
    });
    let lru = Hdnh::new(HdnhParams {
        hot_policy: HotPolicy::Lru,
        ..HdnhParams::for_capacity(N as usize)
    });
    println!(
        "\nhot-table DRAM footprint at equal capacity: RAFL {} KB vs LRU {} KB \
         (the paper's 'LRU list consumes a lot of memory')",
        rafl.hot_table().unwrap().footprint_bytes() / 1024,
        lru.hot_table().unwrap().footprint_bytes() / 1024,
    );
}
