//! Trace save/replay: generate a YCSB op stream once, persist it to a
//! compact binary trace, and replay the identical stream against two
//! schemes — the reproducibility workflow for sharing benchmark inputs.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use std::time::Instant;

use hdnh::{Hdnh, HdnhParams};
use hdnh_baselines::{Cceh, CcehParams};
use hdnh_common::HashIndex;
use hdnh_ycsb::trace::{load_trace, save_trace};
use hdnh_ycsb::{generate_ops, KeySpace, Op, WorkloadSpec};

fn replay(index: &dyn HashIndex, ks: &KeySpace, ops: &[Op]) -> (f64, u64) {
    let mut hits = 0u64;
    let t0 = Instant::now();
    for op in ops {
        match op {
            Op::Read(id) => {
                if index.get(&ks.key(*id)).is_some() {
                    hits += 1;
                }
            }
            Op::ReadAbsent(id) => {
                index.get(&ks.negative_key(*id));
            }
            Op::Insert(id) => {
                let _ = index.insert(&ks.key(*id), &ks.value(*id, 0));
            }
            Op::Update(id, seq) | Op::ReadModifyWrite(id, seq) => {
                let _ = index.upsert(&ks.key(*id), &ks.value(*id, *seq));
            }
            Op::Delete(id) => {
                index.remove(&ks.key(*id));
            }
        }
    }
    (ops.len() as f64 / t0.elapsed().as_secs_f64() / 1e6, hits)
}

fn main() {
    const RECORDS: u64 = 50_000;
    const OPS: usize = 100_000;

    // 1. Generate once, save to disk.
    let ops = generate_ops(&WorkloadSpec::ycsb_a(), RECORDS, RECORDS, OPS, 0xF00D);
    let path = std::env::temp_dir().join("hdnh_ycsb_a.trace");
    save_trace(&path, &ops).expect("save trace");
    let bytes = std::fs::metadata(&path).unwrap().len();
    println!(
        "saved {} ops to {} ({} bytes, {:.2} bytes/op)",
        ops.len(),
        path.display(),
        bytes,
        bytes as f64 / ops.len() as f64
    );

    // 2. Reload — byte-identical stream, shareable across machines.
    let replayed = load_trace(&path).expect("load trace");
    assert_eq!(replayed, ops, "trace roundtrip must be exact");

    // 3. Replay the same stream against two schemes.
    let ks = KeySpace::default();
    for (name, index) in [
        (
            "HDNH",
            Box::new(Hdnh::new(HdnhParams::for_capacity(RECORDS as usize))) as Box<dyn HashIndex>,
        ),
        (
            "CCEH",
            Box::new(Cceh::new(CcehParams::for_capacity(RECORDS as usize))),
        ),
    ] {
        for id in 0..RECORDS {
            index.insert(&ks.key(id), &ks.value(id, 0)).expect("preload");
        }
        let (mops, hits) = replay(index.as_ref(), &ks, &replayed);
        println!("{name}: {mops:.3} Mops/s over the identical trace ({hits} read hits)");
    }
    let _ = std::fs::remove_file(&path);
    println!("trace_replay OK — same inputs, comparable outputs");
}
