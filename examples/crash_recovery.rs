//! Crash-recovery demo: strict-mode NVM, random power failures at nasty
//! moments (including mid-resize), and HDNH's recovery putting the table
//! back together — the paper's §3.7 running before your eyes.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use hdnh::{Hdnh, HdnhParams};
use hdnh_common::{Key, Value};
use hdnh_nvm::NvmOptions;

fn params() -> HdnhParams {
    HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .nvm(NvmOptions::strict()) // shadow media + dirty-line tracking
        .build()
        .expect("demo params are valid")
}

fn main() {
    // Scenario 1: crash right after a batch of acknowledged operations.
    let t = Hdnh::new(params());
    for i in 0..500u64 {
        t.insert(&Key::from_u64(i), &Value::from_u64(i)).unwrap();
    }
    for i in 0..250u64 {
        t.update(&Key::from_u64(i), &Value::from_u64(i + 10_000)).unwrap();
    }
    for i in 400..500u64 {
        t.remove(&Key::from_u64(i)).unwrap();
    }
    let pool = t.into_pool();
    let dropped = pool.crash(0xDEAD); // unflushed lines vanish at random
    println!("scenario 1: power failure dropped {dropped} unflushed words from the caches");
    let r = Hdnh::recover(params(), pool, 2);
    assert_eq!(r.len(), 400);
    for i in 0..250u64 {
        assert_eq!(r.get(&Key::from_u64(i)).unwrap().unwrap().as_u64(), i + 10_000);
    }
    for i in 250..400u64 {
        assert_eq!(r.get(&Key::from_u64(i)).unwrap().unwrap().as_u64(), i);
    }
    for i in 400..500u64 {
        assert!(r.get(&Key::from_u64(i)).unwrap().is_none());
    }
    println!("scenario 1: all 400 acknowledged records recovered, deletes stayed deleted\n");

    // Scenario 2: crash in the middle of a resize ("level number = 3").
    let t = Hdnh::new(params());
    for i in 0..800u64 {
        t.insert(&Key::from_u64(i), &Value::from_u64(i * 3)).unwrap();
    }
    let pool = t.into_crashed_mid_resize(3); // 3 buckets migrated, then poof
    pool.crash(0xBEEF);
    println!("scenario 2: crashed while rehashing (3 buckets migrated)");
    let r = Hdnh::recover(params(), pool, 2);
    assert_eq!(r.len(), 800);
    for i in 0..800u64 {
        assert_eq!(r.get(&Key::from_u64(i)).unwrap().unwrap().as_u64(), i * 3);
    }
    println!("scenario 2: recovery resumed the rehash; all 800 records intact\n");

    // Scenario 3: many random crash points.
    let mut worst_dropped = 0;
    for seed in 0..20u64 {
        let t = Hdnh::new(params());
        for i in 0..300u64 {
            t.insert(&Key::from_u64(i), &Value::from_u64(i)).unwrap();
        }
        let pool = t.into_pool();
        worst_dropped = worst_dropped.max(pool.crash(seed));
        let r = Hdnh::recover(params(), pool, 2);
        assert_eq!(r.len(), 300, "seed {seed}");
    }
    println!("scenario 3: 20 random crashes, worst dropped {worst_dropped} words — zero data loss");
    println!("\ncrash_recovery OK");
}
