//! Value-generation strategies for the proptest shim.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type. Unlike real proptest
/// there is no shrinking; `generate` produces the case value directly.
pub trait Strategy {
    type Value;

    /// Generates one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical "generate anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy form of [`Arbitrary`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

impl<S: Strategy, F, O> Strategy for Map<S, F>
where
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let s = crate::prop_oneof![
            (0u8..4).prop_map(|v| v as u32),
            any::<u32>().prop_map(|v| v | 0x100),
        ];
        let mut rng = TestRng::new(99);
        for _ in 0..100 {
            let _ = s.generate(&mut rng);
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let s = crate::collection::vec(any::<u8>(), 2..5);
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
