//! Offline stand-in for the `proptest` crate.
//!
//! Implements a small deterministic property-testing engine with the API
//! surface the workspace's tests use: `Strategy` (with `prop_map`),
//! `any::<T>()`, integer range strategies, tuple strategies,
//! `prop_oneof!`, `collection::vec`, `ProptestConfig`, the `proptest!`
//! macro, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: no shrinking (a failure reports the
//! deterministic per-case seed instead, which replays the exact inputs),
//! and generation is driven by a fixed xorshift stream seeded from the
//! test name so runs are reproducible without a persistence file.

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Strategy};

/// Subset of proptest's run configuration honoured by the shim runner.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with a length in `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Creates a strategy for vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty size range for vec strategy");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.sizes.end - self.sizes.start) as u64;
            let len = self.sizes.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]`-style function running `config.cases`
/// deterministic cases; on panic the failing case's seed is printed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::test_runner::seed_base(stringify!($name));
            for case in 0..config.cases {
                let seed = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let _guard = $crate::test_runner::CaseGuard::new(stringify!($name), case, seed);
                let mut rng = $crate::test_runner::TestRng::new(seed);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

/// Chooses uniformly among the given strategies (all must share a value
/// type). Weighted arms are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}
