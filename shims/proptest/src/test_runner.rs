//! Deterministic RNG and case bookkeeping for the proptest shim.

/// xorshift64* generator; the whole shim's entropy source.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed (zero is remapped).
    pub fn new(seed: u64) -> Self {
        TestRng(if seed == 0 { 0x853C_49E6_748F_EA9B } else { seed })
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

/// Derives a per-test base seed from the test's name (FNV-1a), so runs
/// are reproducible without a persistence file.
pub fn seed_base(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Prints the failing case's identity if the test body panics, making
/// any failure replayable (same name + case index → same inputs).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    seed: u64,
}

impl CaseGuard {
    pub fn new(name: &'static str, case: u32, seed: u64) -> Self {
        CaseGuard { name, case, seed }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest-shim: test `{}` failed at case {} (seed {:#018x})",
                self.name, self.case, self.seed
            );
        }
    }
}
