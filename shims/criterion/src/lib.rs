//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) with a simple wall-clock
//! measurement loop instead of criterion's statistical machinery.
//!
//! The generated `main` only runs benchmarks when invoked with `--bench`
//! (which `cargo bench` passes); under `cargo test` the harness exits
//! immediately so the expensive bench setup never runs in tier-1.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a displayable parameter (scheme name, size, ...).
    pub fn from_parameter<P: Display>(param: P) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<P: Display>(function: &str, param: P) -> Self {
        BenchmarkId(format!("{function}/{param}"))
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    warmup_iters: u64,
    target: Duration,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            warmup_iters: 10,
            target: Duration::from_millis(100),
            last_ns_per_iter: 0.0,
        }
    }

    /// Times `f`: a short warmup, then batches until the time target is
    /// reached; records mean ns/iter.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.warmup_iters {
            std::hint::black_box(f());
        }
        let mut iters = 0u64;
        let mut batch = 16u64;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            iters += batch;
            let elapsed = start.elapsed();
            if elapsed >= self.target {
                self.last_ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim's loop is time-bounded,
    /// not sample-count-bounded.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        println!(
            "bench {}/{}: {:.1} ns/iter",
            self.name, id.0, b.last_ns_per_iter
        );
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility with generated mains.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        println!("bench {}: {:.1} ns/iter", name, b.last_ns_per_iter);
        self
    }
}

/// True when the harness was asked to actually run benchmarks.
pub fn should_run_benches() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Bundles benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main`, gated on `--bench` so `cargo test` stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::should_run_benches() {
                println!("criterion shim: run via `cargo bench` to execute benchmarks");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new();
        b.target = Duration::from_millis(5);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(b.last_ns_per_iter > 0.0);
    }
}
