//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the parking_lot API it actually uses, implemented on
//! top of `std::sync`. Semantics preserved from the real crate:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no `Result`);
//! * locks are **non-poisoning** — a panic while a guard is held leaves the
//!   lock usable (crash-injection tests rely on this to unwind through
//!   held locks and then inspect the table).

use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with the parking_lot calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex (const, usable in statics like parking_lot's).
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning from a panicked holder.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock with the parking_lot convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock (const, usable in statics like parking_lot's).
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn locks_are_not_poisoned_by_panics() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        // parking_lot semantics: still lockable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
