//! Offline placeholder for the `rand` crate.
//!
//! The workspace declares `rand` in a few manifests but the sources use
//! their own xorshift generators throughout, so nothing here is needed
//! beyond letting dependency resolution succeed without a registry. A
//! tiny seedable generator is provided in case future code reaches for
//! `rand::rngs::SmallRng`-style functionality.

/// Minimal xorshift64* generator, deterministic and seedable.
#[derive(Debug, Clone)]
pub struct XorShiftRng(u64);

impl XorShiftRng {
    /// Creates a generator from a nonzero-coerced seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        XorShiftRng(seed | 1)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShiftRng::seed_from_u64(42);
        let mut b = XorShiftRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
