//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements only `crossbeam::channel` — an unbounded MPMC channel —
//! which is what the sync-writer pool uses. Unlike `std::sync::mpsc`,
//! receivers are cloneable and jobs are distributed to whichever worker
//! pops first, matching crossbeam semantics for the subset we need.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        notify: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Channel is currently empty but senders remain.
        Empty,
        /// Channel is empty and all senders have disconnected.
        Disconnected,
    }

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded MPMC channel. Cloneable: clones
    /// compete for messages (work-stealing pool style).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            notify: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message, waking one waiting receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.notify.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders += 1;
            drop(inner);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                // Wake all receivers so blocked recv() calls observe disconnect.
                self.shared.notify.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .notify
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = inner.queue.pop_front() {
                Ok(v)
            } else if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers += 1;
            drop(inner);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_distributes_messages() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let h1 = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            let h2 = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx2.recv() {
                    got.push(v);
                }
                got
            });
            let mut all: Vec<u32> = h1.join().unwrap();
            all.extend(h2.join().unwrap());
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn try_recv_reports_empty_then_disconnected() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(9).unwrap();
            assert_eq!(rx.try_recv(), Ok(9));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_unblocks_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }
    }
}
